//! Binary trace serialization.
//!
//! A compact fixed-record format so traces can be captured once (e.g. from
//! an instrumented application, the way the paper used Pin) and re-analyzed
//! many times. No external dependencies: 16-byte little-endian records
//! behind a magic/version header.
//!
//! Layout: `b"KTRC" u16 version u16 reserved u64 event_count` followed by
//! `event_count` records of `u64 time_ns | u64 addr | u32 len | u16 thread
//! | u8 kind | u8 pad`.

use crate::trace::{Trace, TraceEvent};
use kona_types::{MemAccess, Nanos, VirtAddr};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"KTRC";
const VERSION: u16 = 1;
const RECORD_BYTES: usize = 24;

/// Writes `trace` to `writer` in the binary trace format.
///
/// Generic writers can be passed by mutable reference (`&mut w`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&0u16.to_le_bytes())?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for e in trace.iter() {
        let mut rec = [0u8; RECORD_BYTES];
        rec[0..8].copy_from_slice(&e.time.as_ns().to_le_bytes());
        rec[8..16].copy_from_slice(&e.access.addr.raw().to_le_bytes());
        rec[16..20].copy_from_slice(&e.access.len.to_le_bytes());
        rec[20..22].copy_from_slice(&e.thread.to_le_bytes());
        rec[22] = u8::from(e.access.kind.is_write());
        writer.write_all(&rec)?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic, unsupported
/// version or malformed record, and propagates reader I/O errors.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Trace> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut trace = Trace::with_capacity(count.min(1 << 24) as usize);
    let mut rec = [0u8; RECORD_BYTES];
    for _ in 0..count {
        reader.read_exact(&mut rec)?;
        let time = Nanos::from_ns(u64::from_le_bytes(rec[0..8].try_into().expect("8")));
        let addr = VirtAddr::new(u64::from_le_bytes(rec[8..16].try_into().expect("8")));
        let len = u32::from_le_bytes(rec[16..20].try_into().expect("4"));
        let thread = u16::from_le_bytes(rec[20..22].try_into().expect("2"));
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "zero-length access record",
            ));
        }
        let access = match rec[22] {
            0 => MemAccess::read(addr, len),
            1 => MemAccess::write(addr, len),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad access kind {other}"),
                ))
            }
        };
        trace.push(TraceEvent::on_thread(time, access, thread));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::new(Nanos::ZERO, MemAccess::read(VirtAddr::new(64), 8)));
        t.push(TraceEvent::on_thread(
            Nanos::micros(5),
            MemAccess::write(VirtAddr::new(4096), 128),
            3,
        ));
        t
    }

    #[test]
    fn roundtrip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert_eq!(buf.len(), 16 + 2 * RECORD_BYTES);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new()).unwrap();
        assert!(read_trace(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"[..])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new()).unwrap();
        buf[4] = 99;
        assert_eq!(
            read_trace(buf.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_record_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_kind_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf[16 + 22] = 7; // first record's kind byte
        assert_eq!(
            read_trace(buf.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x10);
        for _ in 0..32 {
            let mut t = Trace::new();
            for i in 0..rng.gen_range(0usize..200) {
                let addr = rng.gen_range(0u64..1 << 40);
                let len = rng.gen_range(1u32..1 << 16);
                let thread = rng.gen_range(0u16..8);
                let access = if rng.gen() {
                    MemAccess::write(VirtAddr::new(addr), len)
                } else {
                    MemAccess::read(VirtAddr::new(addr), len)
                };
                t.push(TraceEvent::on_thread(Nanos::from_ns(i as u64), access, thread));
            }
            let mut buf = Vec::new();
            write_trace(&mut buf, &t).unwrap();
            assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
        }
    }
}
