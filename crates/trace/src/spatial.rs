//! Spatial locality analysis: accessed cache-lines per page (Fig 2).
//!
//! For each 4 KiB page touched in a window, count how many distinct cache
//! lines were accessed, separately for reads and writes, then report the
//! distribution over pages as a CDF. The paper's key observation (§2.2) is
//! bimodality: pages either have 1–8 lines accessed or all 64.

use crate::stats::Cdf;
use crate::trace::TraceEvent;
use kona_types::{AccessKind, FxHashMap, LineBitmap, MemAccess, PageGeometry};

/// Accumulates per-page accessed-line bitmaps split by access kind.
///
/// # Examples
///
/// ```
/// # use kona_trace::spatial::SpatialAnalysis;
/// # use kona_types::{MemAccess, VirtAddr};
/// let mut sp = SpatialAnalysis::new();
/// sp.record(MemAccess::read(VirtAddr::new(0), 8));
/// sp.record(MemAccess::read(VirtAddr::new(256), 8));
/// let cdf = sp.read_cdf();
/// // One page with two accessed lines.
/// assert_eq!(cdf.total(), 1);
/// assert_eq!(cdf.fraction_le(2), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialAnalysis {
    geometry: PageGeometry,
    read_pages: FxHashMap<u64, LineBitmap>,
    write_pages: FxHashMap<u64, LineBitmap>,
}

impl SpatialAnalysis {
    /// Creates an analysis over 4 KiB pages.
    pub fn new() -> Self {
        Self::with_geometry(PageGeometry::base())
    }

    /// Creates an analysis over a custom page geometry.
    pub fn with_geometry(geometry: PageGeometry) -> Self {
        SpatialAnalysis {
            geometry,
            read_pages: FxHashMap::default(),
            write_pages: FxHashMap::default(),
        }
    }

    /// Builds an analysis over an event stream.
    pub fn over_events<I: IntoIterator<Item = TraceEvent>>(events: I) -> Self {
        let mut sp = SpatialAnalysis::new();
        for e in events {
            sp.record(e.access);
        }
        sp
    }

    /// Records one access.
    pub fn record(&mut self, access: MemAccess) {
        let pages = match access.kind {
            AccessKind::Read => &mut self.read_pages,
            AccessKind::Write => &mut self.write_pages,
        };
        let lines_per_page = self.geometry.lines_per_page();
        for (page, line) in self.geometry.lines_in_range(access.addr, u64::from(access.len)) {
            pages
                .entry(page)
                .or_insert_with(|| LineBitmap::new(lines_per_page))
                .set(line);
        }
    }

    /// CDF over pages of the number of distinct lines **read** per page.
    pub fn read_cdf(&self) -> Cdf {
        Self::cdf_of(&self.read_pages)
    }

    /// CDF over pages of the number of distinct lines **written** per page.
    pub fn write_cdf(&self) -> Cdf {
        Self::cdf_of(&self.write_pages)
    }

    /// Number of pages with at least one read.
    pub fn read_page_count(&self) -> usize {
        self.read_pages.len()
    }

    /// Number of pages with at least one write.
    pub fn write_page_count(&self) -> usize {
        self.write_pages.len()
    }

    /// Fraction of written pages that are fully written (all lines dirty) —
    /// the "all 64 cache-lines accessed" mode of the paper's bimodal
    /// distribution.
    pub fn fully_written_fraction(&self) -> f64 {
        if self.write_pages.is_empty() {
            return 0.0;
        }
        let full = self
            .write_pages
            .values()
            .filter(|bm| bm.all())
            .count();
        full as f64 / self.write_pages.len() as f64
    }

    fn cdf_of(pages: &FxHashMap<u64, LineBitmap>) -> Cdf {
        pages
            .values()
            .map(|bm| bm.count_set() as u64)
            .collect()
    }

    /// Merges another analysis (e.g. from a different window) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &SpatialAnalysis) {
        assert_eq!(self.geometry, other.geometry, "geometries must match");
        for (page, bm) in &other.read_pages {
            self.read_pages
                .entry(*page)
                .or_insert_with(|| LineBitmap::new(bm.len()))
                .union_with(bm);
        }
        for (page, bm) in &other.write_pages {
            self.write_pages
                .entry(*page)
                .or_insert_with(|| LineBitmap::new(bm.len()))
                .union_with(bm);
        }
    }
}

impl Default for SpatialAnalysis {
    fn default() -> Self {
        SpatialAnalysis::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::VirtAddr;
    use kona_types::rng::{Rng, StdRng};

    #[test]
    fn reads_and_writes_tracked_separately() {
        let mut sp = SpatialAnalysis::new();
        sp.record(MemAccess::read(VirtAddr::new(0), 8));
        sp.record(MemAccess::write(VirtAddr::new(4096), 8));
        assert_eq!(sp.read_page_count(), 1);
        assert_eq!(sp.write_page_count(), 1);
        assert_eq!(sp.read_cdf().total(), 1);
        assert_eq!(sp.write_cdf().total(), 1);
    }

    #[test]
    fn distinct_lines_counted_once() {
        let mut sp = SpatialAnalysis::new();
        for _ in 0..10 {
            sp.record(MemAccess::read(VirtAddr::new(100), 4));
        }
        assert_eq!(sp.read_cdf().quantile(1.0), Some(1));
    }

    #[test]
    fn full_page_write() {
        let mut sp = SpatialAnalysis::new();
        sp.record(MemAccess::write(VirtAddr::new(0), 4096));
        assert_eq!(sp.write_cdf().quantile(1.0), Some(64));
        assert_eq!(sp.fully_written_fraction(), 1.0);
    }

    #[test]
    fn fully_written_fraction_mixed() {
        let mut sp = SpatialAnalysis::new();
        sp.record(MemAccess::write(VirtAddr::new(0), 4096));
        sp.record(MemAccess::write(VirtAddr::new(4096), 64));
        assert_eq!(sp.fully_written_fraction(), 0.5);
        assert_eq!(SpatialAnalysis::new().fully_written_fraction(), 0.0);
    }

    #[test]
    fn merge_unions_bitmaps() {
        let mut a = SpatialAnalysis::new();
        a.record(MemAccess::read(VirtAddr::new(0), 8));
        let mut b = SpatialAnalysis::new();
        b.record(MemAccess::read(VirtAddr::new(64), 8));
        a.merge(&b);
        assert_eq!(a.read_cdf().quantile(1.0), Some(2));
    }

    #[test]
    fn custom_geometry() {
        let mut sp = SpatialAnalysis::with_geometry(PageGeometry::with_page_size(1024));
        sp.record(MemAccess::write(VirtAddr::new(0), 1024));
        assert_eq!(sp.write_cdf().quantile(1.0), Some(16));
    }

    /// Line counts per page never exceed the page's line capacity, and
    /// the number of pages in the CDF matches the distinct pages touched.
    #[test]
    fn prop_bounds() {
        let mut rng = StdRng::seed_from_u64(0x5BA7);
        for case in 0..32 {
            let mut sp = SpatialAnalysis::new();
            let mut read_pages = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(1usize..200) {
                let addr = rng.gen_range(0u64..1u64 << 20);
                let len = rng.gen_range(1u32..512);
                let a = if rng.gen() {
                    MemAccess::write(VirtAddr::new(addr), len)
                } else {
                    read_pages.extend(
                        PageGeometry::base()
                            .lines_in_range(VirtAddr::new(addr), u64::from(len))
                            .map(|(p, _)| p),
                    );
                    MemAccess::read(VirtAddr::new(addr), len)
                };
                sp.record(a);
            }
            assert_eq!(sp.read_page_count(), read_pages.len(), "case {case}");
            assert!(sp.read_cdf().quantile(1.0).is_none_or(|v| v <= 64));
            assert!(sp.write_cdf().quantile(1.0).is_none_or(|v| v <= 64));
        }
    }
}
