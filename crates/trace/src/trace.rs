//! Trace containers.

use kona_types::{MemAccess, Nanos};
use std::fmt;

/// A timestamped memory access, optionally tagged with the issuing thread.
///
/// # Examples
///
/// ```
/// # use kona_trace::TraceEvent;
/// # use kona_types::{MemAccess, Nanos, VirtAddr};
/// let e = TraceEvent::new(Nanos::micros(5), MemAccess::read(VirtAddr::new(64), 8));
/// assert_eq!(e.time, Nanos::micros(5));
/// assert_eq!(e.thread, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Simulated instant at which the access was issued.
    pub time: Nanos,
    /// The access itself.
    pub access: MemAccess,
    /// Issuing thread (0 for single-threaded workloads).
    pub thread: u16,
}

impl TraceEvent {
    /// Creates an event on thread 0.
    pub fn new(time: Nanos, access: MemAccess) -> Self {
        TraceEvent {
            time,
            access,
            thread: 0,
        }
    }

    /// Creates an event tagged with a thread id.
    pub fn on_thread(time: Nanos, access: MemAccess, thread: u16) -> Self {
        TraceEvent {
            time,
            access,
            thread,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} t{}] {}", self.time, self.thread, self.access)
    }
}

/// An in-memory sequence of [`TraceEvent`]s, ordered by time.
///
/// Workload generators produce traces; analyses and simulators consume them
/// either as a whole or streamed through [`Trace::iter`].
///
/// # Examples
///
/// ```
/// # use kona_trace::{Trace, TraceEvent};
/// # use kona_types::{MemAccess, Nanos, VirtAddr};
/// let mut t = Trace::new();
/// t.push(TraceEvent::new(Nanos::ZERO, MemAccess::write(VirtAddr::new(0), 8)));
/// t.push(TraceEvent::new(Nanos::secs(1), MemAccess::read(VirtAddr::new(64), 8)));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.duration(), Nanos::secs(1));
/// assert_eq!(t.write_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the event is older than the last one;
    /// traces must be time-ordered.
    pub fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.time <= event.time),
            "trace events must be pushed in time order"
        );
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Borrows the events as a slice.
    pub fn as_slice(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Time span from the first to the last event ([`Nanos::ZERO`] when
    /// fewer than two events exist).
    pub fn duration(&self) -> Nanos {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => Nanos::ZERO,
        }
    }

    /// Number of write events.
    pub fn write_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.access.kind.is_write())
            .count()
    }

    /// Number of read events.
    pub fn read_count(&self) -> usize {
        self.len() - self.write_count()
    }

    /// Total bytes touched by write events (with repetition).
    pub fn bytes_written(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.access.kind.is_write())
            .map(|e| u64::from(e.access.len))
            .sum()
    }

    /// Highest address touched plus one, i.e. the size of the address range
    /// the trace requires (assuming it starts at zero).
    pub fn address_span(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.access.end().raw())
            .max()
            .unwrap_or(0)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut t = Trace::new();
        for e in iter {
            t.push(e);
        }
        t
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::{MemAccess, VirtAddr};

    fn ev(t_ns: u64, addr: u64, len: u32, write: bool) -> TraceEvent {
        let a = if write {
            MemAccess::write(VirtAddr::new(addr), len)
        } else {
            MemAccess::read(VirtAddr::new(addr), len)
        };
        TraceEvent::new(Nanos::from_ns(t_ns), a)
    }

    #[test]
    fn push_and_stats() {
        let mut t = Trace::with_capacity(4);
        t.push(ev(0, 0, 8, true));
        t.push(ev(10, 64, 8, false));
        t.push(ev(20, 128, 16, true));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.write_count(), 2);
        assert_eq!(t.read_count(), 1);
        assert_eq!(t.bytes_written(), 24);
        assert_eq!(t.duration(), Nanos::from_ns(20));
        assert_eq!(t.address_span(), 144);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), Nanos::ZERO);
        assert_eq!(t.address_span(), 0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics() {
        let mut t = Trace::new();
        t.push(ev(10, 0, 8, true));
        t.push(ev(5, 0, 8, true));
    }

    #[test]
    fn from_and_into_iterator() {
        let t: Trace = vec![ev(0, 0, 8, true), ev(1, 8, 8, false)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
        let back: Vec<TraceEvent> = t.clone().into_iter().collect();
        assert_eq!(back.len(), 2);
        let mut t2 = Trace::new();
        t2.extend(back);
        assert_eq!(t2, t);
        assert_eq!((&t).into_iter().count(), 2);
    }

    #[test]
    fn thread_tagging() {
        let e = TraceEvent::on_thread(Nanos::ZERO, MemAccess::read(VirtAddr::new(0), 1), 3);
        assert_eq!(e.thread, 3);
        assert!(e.to_string().contains("t3"));
    }
}
