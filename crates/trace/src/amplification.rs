//! Dirty-data amplification analysis (Table 2, Fig 9).
//!
//! The paper defines amplification as *"the ratio of data marked as dirty
//! using the tracking granularity to the actual number of bytes written by
//! the application"* (§2.1), measured against the number of **dirty bytes**
//! (unique bytes written) in each window.
//!
//! [`AmplificationAnalysis`] computes, in a single pass over the write
//! events of a window, the exact set of dirty bytes (via per-line byte
//! masks) and the number of distinct tracking units dirtied at 64 B
//! cache-line, 4 KiB page and 2 MiB page granularity.

use crate::trace::TraceEvent;
use kona_types::{FxHashMap, MemAccess, CACHE_LINE_SIZE, PAGE_SIZE_2M, PAGE_SIZE_4K};

/// Dirty-byte and tracking-unit counts for one batch of write events.
///
/// # Examples
///
/// ```
/// # use kona_trace::amplification::AmplificationAnalysis;
/// # use kona_types::{MemAccess, VirtAddr};
/// let mut amp = AmplificationAnalysis::new();
/// // Two 8-byte writes to the same line: 16 dirty bytes, 1 dirty line.
/// amp.record(MemAccess::write(VirtAddr::new(0), 8));
/// amp.record(MemAccess::write(VirtAddr::new(8), 8));
/// assert_eq!(amp.dirty_bytes(), 16);
/// assert_eq!(amp.dirty_lines(), 1);
/// assert_eq!(amp.amplification_line(), 4.0); // 64 / 16
/// assert_eq!(amp.amplification_4k(), 256.0); // 4096 / 16
/// ```
#[derive(Debug, Clone, Default)]
pub struct AmplificationAnalysis {
    /// Per dirty cache line, the mask of bytes actually written.
    line_masks: FxHashMap<u64, u64>,
    /// Total bytes written including re-writes (for reference).
    bytes_written_total: u64,
}

impl AmplificationAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        AmplificationAnalysis::default()
    }

    /// Builds an analysis over the write events of an event stream
    /// (read events are ignored).
    pub fn over_events<I: IntoIterator<Item = TraceEvent>>(events: I) -> Self {
        let mut amp = AmplificationAnalysis::new();
        for e in events {
            amp.record(e.access);
        }
        amp
    }

    /// Records one access; reads are ignored.
    pub fn record(&mut self, access: MemAccess) {
        if !access.kind.is_write() {
            return;
        }
        self.bytes_written_total += u64::from(access.len);
        let mut addr = access.addr.raw();
        let end = access.end().raw();
        while addr < end {
            let line = addr / CACHE_LINE_SIZE;
            let off = (addr % CACHE_LINE_SIZE) as u32;
            let span = ((CACHE_LINE_SIZE - u64::from(off)).min(end - addr)) as u32;
            // Mask of `span` bits starting at `off`.
            let mask = if span >= 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << off
            };
            *self.line_masks.entry(line).or_insert(0) |= mask;
            addr += u64::from(span);
        }
    }

    /// Unique bytes written (the paper's "number of dirty bytes").
    pub fn dirty_bytes(&self) -> u64 {
        self.line_masks.values().map(|m| u64::from(m.count_ones())).sum()
    }

    /// Total bytes written, counting re-writes of the same byte.
    pub fn bytes_written_total(&self) -> u64 {
        self.bytes_written_total
    }

    /// Number of distinct dirty 64 B cache lines.
    pub fn dirty_lines(&self) -> usize {
        self.line_masks.len()
    }

    /// Number of distinct dirty 4 KiB pages.
    pub fn dirty_pages_4k(&self) -> usize {
        self.distinct_units(PAGE_SIZE_4K / CACHE_LINE_SIZE)
    }

    /// Number of distinct dirty 2 MiB pages.
    pub fn dirty_pages_2m(&self) -> usize {
        self.distinct_units(PAGE_SIZE_2M / CACHE_LINE_SIZE)
    }

    fn distinct_units(&self, lines_per_unit: u64) -> usize {
        let mut units: Vec<u64> = self
            .line_masks
            .keys()
            .map(|&line| line / lines_per_unit)
            .collect();
        units.sort_unstable();
        units.dedup();
        units.len()
    }

    /// Amplification with 64 B cache-line tracking.
    pub fn amplification_line(&self) -> f64 {
        self.ratio(self.dirty_lines() as u64 * CACHE_LINE_SIZE)
    }

    /// Amplification with 4 KiB page tracking.
    pub fn amplification_4k(&self) -> f64 {
        self.ratio(self.dirty_pages_4k() as u64 * PAGE_SIZE_4K)
    }

    /// Amplification with 2 MiB page tracking.
    pub fn amplification_2m(&self) -> f64 {
        self.ratio(self.dirty_pages_2m() as u64 * PAGE_SIZE_2M)
    }

    fn ratio(&self, tracked_bytes: u64) -> f64 {
        let dirty = self.dirty_bytes();
        if dirty == 0 {
            return 0.0;
        }
        tracked_bytes as f64 / dirty as f64
    }

    /// Returns `true` if no write was recorded.
    pub fn is_empty(&self) -> bool {
        self.line_masks.is_empty()
    }
}

/// One row of the per-window amplification series plotted in Fig 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAmplification {
    /// Window index (window = 1 s in the paper's Fig 9).
    pub window: usize,
    /// Amplification at 4 KiB tracking in this window.
    pub amp_4k: f64,
    /// Amplification at 2 MiB tracking in this window.
    pub amp_2m: f64,
    /// Amplification at cache-line tracking in this window.
    pub amp_line: f64,
    /// Unique dirty bytes in this window.
    pub dirty_bytes: u64,
}

impl WindowAmplification {
    /// The paper's Fig 9 y-axis: 4 KiB amplification relative to cache-line
    /// amplification.
    pub fn relative_4k_over_line(&self) -> f64 {
        if self.amp_line == 0.0 {
            0.0
        } else {
            self.amp_4k / self.amp_line
        }
    }
}

/// Computes the per-window amplification series for a windowed trace
/// (the drive loop behind Fig 9 and the Table 2 averages).
///
/// Windows with no writes produce no entry, matching the paper's exclusion
/// of idle windows. The paper also excludes the final (process tear-down)
/// window; callers regenerate that decision via
/// [`drop_last_window`](fn@per_window_series) semantics in the bench
/// harness.
pub fn per_window_series<'a, I>(windows: I) -> Vec<WindowAmplification>
where
    I: IntoIterator<Item = &'a [TraceEvent]>,
{
    windows
        .into_iter()
        .enumerate()
        .filter_map(|(i, events)| {
            let amp = AmplificationAnalysis::over_events(events.iter().copied());
            if amp.is_empty() {
                return None;
            }
            Some(WindowAmplification {
                window: i,
                amp_4k: amp.amplification_4k(),
                amp_2m: amp.amplification_2m(),
                amp_line: amp.amplification_line(),
                dirty_bytes: amp.dirty_bytes(),
            })
        })
        .collect()
}

/// Averages a per-window series into the three Table 2 columns, weighting
/// each window by its dirty bytes (so long idle windows don't distort the
/// application-level number).
pub fn averaged(series: &[WindowAmplification]) -> (f64, f64, f64) {
    let total: u64 = series.iter().map(|w| w.dirty_bytes).sum();
    if total == 0 {
        return (0.0, 0.0, 0.0);
    }
    let mut a4 = 0.0;
    let mut a2 = 0.0;
    let mut al = 0.0;
    for w in series {
        let weight = w.dirty_bytes as f64 / total as f64;
        a4 += w.amp_4k * weight;
        a2 += w.amp_2m * weight;
        al += w.amp_line * weight;
    }
    (a4, a2, al)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use crate::window::Windows;
    use kona_types::{Nanos, VirtAddr};
    use kona_types::rng::{Rng, StdRng};

    #[test]
    fn single_full_line_write() {
        let mut amp = AmplificationAnalysis::new();
        amp.record(MemAccess::write(VirtAddr::new(0), 64));
        assert_eq!(amp.dirty_bytes(), 64);
        assert_eq!(amp.dirty_lines(), 1);
        assert_eq!(amp.dirty_pages_4k(), 1);
        assert_eq!(amp.dirty_pages_2m(), 1);
        assert_eq!(amp.amplification_line(), 1.0);
        assert_eq!(amp.amplification_4k(), 64.0);
        assert_eq!(amp.amplification_2m(), 32768.0);
    }

    #[test]
    fn reads_ignored() {
        let mut amp = AmplificationAnalysis::new();
        amp.record(MemAccess::read(VirtAddr::new(0), 64));
        assert!(amp.is_empty());
        assert_eq!(amp.amplification_4k(), 0.0);
    }

    #[test]
    fn rewrites_do_not_double_count_dirty_bytes() {
        let mut amp = AmplificationAnalysis::new();
        amp.record(MemAccess::write(VirtAddr::new(0), 8));
        amp.record(MemAccess::write(VirtAddr::new(0), 8));
        assert_eq!(amp.dirty_bytes(), 8);
        assert_eq!(amp.bytes_written_total(), 16);
    }

    #[test]
    fn write_straddling_lines() {
        let mut amp = AmplificationAnalysis::new();
        amp.record(MemAccess::write(VirtAddr::new(60), 8));
        assert_eq!(amp.dirty_lines(), 2);
        assert_eq!(amp.dirty_bytes(), 8);
    }

    #[test]
    fn sequential_full_page_write_has_unit_line_amplification() {
        let mut amp = AmplificationAnalysis::new();
        for i in 0..64 {
            amp.record(MemAccess::write(VirtAddr::new(i * 64), 64));
        }
        assert_eq!(amp.dirty_bytes(), 4096);
        assert_eq!(amp.amplification_line(), 1.0);
        assert_eq!(amp.amplification_4k(), 1.0);
    }

    #[test]
    fn sparse_random_writes_have_high_page_amplification() {
        let mut amp = AmplificationAnalysis::new();
        // One 8-byte write in each of 16 different pages.
        for p in 0..16u64 {
            amp.record(MemAccess::write(VirtAddr::new(p * 4096 + 128), 8));
        }
        assert_eq!(amp.dirty_bytes(), 128);
        assert_eq!(amp.dirty_pages_4k(), 16);
        assert_eq!(amp.amplification_4k(), 512.0); // 16*4096/128
        assert_eq!(amp.amplification_line(), 8.0); // 16*64/128
    }

    #[test]
    fn per_window_series_skips_idle_windows() {
        let mut t = Trace::new();
        t.push(TraceEvent::new(
            Nanos::secs(0),
            MemAccess::write(VirtAddr::new(0), 8),
        ));
        t.push(TraceEvent::new(
            Nanos::secs(2),
            MemAccess::write(VirtAddr::new(4096), 8),
        ));
        let series = per_window_series(Windows::new(&t, Nanos::secs(1)).iter());
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].window, 0);
        assert_eq!(series[1].window, 2);
        assert_eq!(series[0].relative_4k_over_line(), 512.0 / 8.0);
    }

    #[test]
    fn averaged_weights_by_dirty_bytes() {
        let series = vec![
            WindowAmplification {
                window: 0,
                amp_4k: 10.0,
                amp_2m: 100.0,
                amp_line: 1.0,
                dirty_bytes: 100,
            },
            WindowAmplification {
                window: 1,
                amp_4k: 20.0,
                amp_2m: 200.0,
                amp_line: 2.0,
                dirty_bytes: 300,
            },
        ];
        let (a4, a2, al) = averaged(&series);
        assert!((a4 - 17.5).abs() < 1e-9);
        assert!((a2 - 175.0).abs() < 1e-9);
        assert!((al - 1.75).abs() < 1e-9);
        assert_eq!(averaged(&[]), (0.0, 0.0, 0.0));
    }

    /// Amplification is never below 1 for any granularity (you cannot
    /// track fewer bytes than were dirtied), and coarser granularities
    /// never amplify less than finer ones.
    #[test]
    fn prop_granularity_ordering() {
        let mut rng = StdRng::seed_from_u64(0xA32);
        for case in 0..64 {
            let mut amp = AmplificationAnalysis::new();
            for _ in 0..rng.gen_range(1usize..100) {
                let addr = rng.gen_range(0u64..1u64 << 24);
                let len = rng.gen_range(1u32..256);
                amp.record(MemAccess::write(VirtAddr::new(addr), len));
            }
            let line = amp.amplification_line();
            let p4 = amp.amplification_4k();
            let p2 = amp.amplification_2m();
            assert!(line >= 1.0 - 1e-12, "case {case}");
            assert!(p4 >= line - 1e-9, "case {case}");
            assert!(p2 >= p4 - 1e-9, "case {case}");
        }
    }

    /// Dirty bytes equal the size of the union of written intervals.
    #[test]
    fn prop_dirty_bytes_match_interval_union() {
        let mut rng = StdRng::seed_from_u64(0xD127);
        for case in 0..64 {
            let mut amp = AmplificationAnalysis::new();
            let mut model = vec![false; 8192];
            for _ in 0..rng.gen_range(1usize..50) {
                let addr = rng.gen_range(0u64..4096);
                let len = rng.gen_range(1u32..64);
                amp.record(MemAccess::write(VirtAddr::new(addr), len));
                for b in addr..addr + u64::from(len) {
                    model[b as usize] = true;
                }
            }
            assert_eq!(
                amp.dirty_bytes(),
                model.iter().filter(|&&b| b).count() as u64,
                "case {case}"
            );
        }
    }
}
