//! The agents' LRU order list (crate-internal).
//!
//! Previously a `HashMap<u64, (Option<u64>, Option<u64>)>` of linked
//! neighbour keys — several SipHash probes and a map re-insert per touch.
//! Now the shared slab-backed intrusive list from `kona-types`
//! ([`SlabLru`]): one Fx-hash probe plus constant slab pointer updates per
//! touch, no allocation. The VM reclaim list uses the same structure, so
//! both runtimes' eviction order logic lives in one place.

pub(crate) use kona_types::SlabLru as LruList;

#[cfg(test)]
mod tests {
    use super::*;

    /// The replacement preserves the exact semantics the agents rely on.
    #[test]
    fn order_and_ops() {
        let mut l = LruList::new();
        l.touch(1);
        l.touch(2);
        l.touch(3);
        l.touch(1);
        assert_eq!(l.len(), 3);
        assert_eq!(l.pop_lru(), Some(2));
        assert!(l.remove(3));
        assert!(!l.remove(3));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), None);
    }
}
