//! A small O(1) LRU order list over `u64` keys (crate-internal).

use std::collections::HashMap;

/// Intrusive doubly-linked LRU list keyed by `u64`.
#[derive(Debug, Clone, Default)]
pub(crate) struct LruList {
    links: HashMap<u64, (Option<u64>, Option<u64>)>,
    head: Option<u64>,
    tail: Option<u64>,
}

impl LruList {
    pub(crate) fn new() -> Self {
        LruList::default()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.links.len()
    }

    pub(crate) fn touch(&mut self, key: u64) {
        if self.links.contains_key(&key) {
            self.unlink(key);
        }
        let old_head = self.head;
        self.links.insert(key, (None, old_head));
        if let Some(h) = old_head {
            self.links.get_mut(&h).expect("head linked").0 = Some(key);
        }
        self.head = Some(key);
        if self.tail.is_none() {
            self.tail = Some(key);
        }
    }

    pub(crate) fn pop_lru(&mut self) -> Option<u64> {
        let t = self.tail?;
        self.unlink(t);
        self.links.remove(&t);
        Some(t)
    }

    pub(crate) fn remove(&mut self, key: u64) -> bool {
        if self.links.contains_key(&key) {
            self.unlink(key);
            self.links.remove(&key);
            true
        } else {
            false
        }
    }

    fn unlink(&mut self, key: u64) {
        let (prev, next) = *self.links.get(&key).expect("unlink of untracked key");
        match prev {
            Some(q) => self.links.get_mut(&q).expect("prev linked").1 = next,
            None => self.head = next,
        }
        match next {
            Some(q) => self.links.get_mut(&q).expect("next linked").0 = prev,
            None => self.tail = prev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_ops() {
        let mut l = LruList::new();
        l.touch(1);
        l.touch(2);
        l.touch(3);
        l.touch(1);
        assert_eq!(l.len(), 3);
        assert_eq!(l.pop_lru(), Some(2));
        assert!(l.remove(3));
        assert!(!l.remove(3));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), None);
    }
}
