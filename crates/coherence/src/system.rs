//! The coherence system: agents + directory + the writeback event stream.

use crate::agent::{AgentStats, CacheAgent, LineState};
use crate::directory::{DirEntry, Directory};
use kona_types::LineIndex;
use std::collections::VecDeque;

/// Identifies a cache agent (CPU core / cache slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentId(pub u32);

/// Why a modified line reached memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritebackCause {
    /// Capacity eviction from a cache agent (PutM).
    Eviction,
    /// Downgrade to Shared because another agent read the line.
    Downgrade,
    /// Invalidation because another agent wrote the line.
    Invalidation,
    /// Explicit snoop issued by the memory agent (the FPGA preparing to
    /// write dirty data to remote memory, §4.4).
    Snoop,
}

/// A dirty line reaching memory — the raw material of Kona's cache-line
/// dirty-data tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritebackEvent {
    /// The line written back.
    pub line: LineIndex,
    /// The agent that held the modified copy.
    pub agent: AgentId,
    /// What triggered the writeback.
    pub cause: WritebackCause,
}

/// Result of one processor access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The access was satisfied without a directory transaction.
    pub hit: bool,
    /// Invalidations sent to other agents.
    pub invalidations: usize,
    /// A dirty copy had to be fetched from another agent.
    pub forwarded: bool,
}

/// Protocol-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Total reads issued.
    pub reads: u64,
    /// Total writes issued.
    pub writes: u64,
    /// Directory transactions (misses and upgrades).
    pub directory_transactions: u64,
    /// Invalidation messages delivered.
    pub invalidations: u64,
    /// Writebacks that reached memory.
    pub writebacks: u64,
    /// Snoops issued by the memory agent.
    pub snoops: u64,
}

impl CoherenceStats {
    /// Accumulates another domain's counters (shard-merge aggregation).
    pub fn merge(&mut self, other: &CoherenceStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.directory_transactions += other.directory_transactions;
        self.invalidations += other.invalidations;
        self.writebacks += other.writebacks;
        self.snoops += other.snoops;
    }
}

/// A complete single-host coherence domain.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct CoherenceSystem {
    agents: Vec<CacheAgent>,
    directory: Directory,
    events: VecDeque<WritebackEvent>,
    stats: CoherenceStats,
}

impl CoherenceSystem {
    /// Creates `n_agents` agents each holding up to `lines_per_agent`
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(n_agents: usize, lines_per_agent: usize) -> Self {
        assert!(n_agents > 0, "need at least one agent");
        CoherenceSystem {
            agents: (0..n_agents).map(|_| CacheAgent::new(lines_per_agent)).collect(),
            directory: Directory::new(),
            events: VecDeque::new(),
            stats: CoherenceStats::default(),
        }
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Counters for one agent.
    ///
    /// # Panics
    ///
    /// Panics if the agent id is out of range.
    pub fn agent_stats(&self, agent: AgentId) -> AgentStats {
        self.agents[agent.0 as usize].stats()
    }

    /// Protocol counters.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// Directory state for a line (for inspection).
    pub fn directory_entry(&self, line: LineIndex) -> DirEntry {
        self.directory.entry(line)
    }

    /// Agent-side state for a line (for inspection).
    pub fn agent_state(&self, agent: AgentId, line: LineIndex) -> Option<LineState> {
        self.agents[agent.0 as usize].state(line)
    }

    /// Drains the queued writeback events (the FPGA polls this stream).
    pub fn drain_writebacks(&mut self) -> Vec<WritebackEvent> {
        self.events.drain(..).collect()
    }

    /// Processor load of `line` by `agent`.
    ///
    /// # Panics
    ///
    /// Panics if the agent id is out of range.
    pub fn read(&mut self, agent: AgentId, line: LineIndex) -> AccessResult {
        self.stats.reads += 1;
        let idx = agent.0 as usize;
        if self.agents[idx].state(line).is_some() {
            self.agents[idx].note_hit(line);
            return AccessResult {
                hit: true,
                invalidations: 0,
                forwarded: false,
            };
        }

        self.agents[idx].note_miss();
        self.stats.directory_transactions += 1;
        let mut forwarded = false;
        let new_state = match self.directory.entry(line) {
            DirEntry::Uncached => {
                self.directory.set(line, DirEntry::Owned(agent.0));
                LineState::Exclusive
            }
            DirEntry::Shared(mut sharers) => {
                sharers.push(agent.0);
                self.directory.set(line, DirEntry::Shared(sharers));
                LineState::Shared
            }
            DirEntry::Owned(owner) => {
                // Downgrade the owner; a Modified copy is written back.
                let owner_idx = owner as usize;
                match self.agents[owner_idx].state(line) {
                    Some(LineState::Modified) => {
                        self.agents[owner_idx].set_state(line, LineState::Shared);
                        self.push_writeback(line, AgentId(owner), WritebackCause::Downgrade);
                        forwarded = true;
                    }
                    Some(LineState::Exclusive) => {
                        self.agents[owner_idx].set_state(line, LineState::Shared);
                    }
                    // The owner silently evicted the clean line; directory
                    // state was stale.
                    _ => {}
                }
                let mut sharers = vec![agent.0];
                if self.agents[owner_idx].state(line).is_some() {
                    sharers.push(owner);
                }
                self.directory.set(line, DirEntry::Shared(sharers));
                LineState::Shared
            }
        };
        self.install(idx, line, new_state);
        AccessResult {
            hit: false,
            invalidations: 0,
            forwarded,
        }
    }

    /// Processor store to `line` by `agent`.
    ///
    /// # Panics
    ///
    /// Panics if the agent id is out of range.
    pub fn write(&mut self, agent: AgentId, line: LineIndex) -> AccessResult {
        self.stats.writes += 1;
        let idx = agent.0 as usize;
        match self.agents[idx].state(line) {
            Some(LineState::Modified) => {
                self.agents[idx].note_hit(line);
                return AccessResult {
                    hit: true,
                    invalidations: 0,
                    forwarded: false,
                };
            }
            Some(LineState::Exclusive) => {
                // Silent E -> M upgrade: no directory message in MESI.
                self.agents[idx].set_state(line, LineState::Modified);
                self.agents[idx].note_hit(line);
                return AccessResult {
                    hit: true,
                    invalidations: 0,
                    forwarded: false,
                };
            }
            Some(LineState::Shared) | None => {}
        }

        self.agents[idx].note_miss();
        self.stats.directory_transactions += 1;
        let mut invalidations = 0;
        let mut forwarded = false;
        match self.directory.entry(line) {
            DirEntry::Uncached => {}
            DirEntry::Shared(sharers) => {
                for s in sharers {
                    if s != agent.0 && self.agents[s as usize].invalidate(line).is_some() {
                        invalidations += 1;
                        self.stats.invalidations += 1;
                    }
                }
            }
            DirEntry::Owned(owner) if owner != agent.0 => {
                let owner_idx = owner as usize;
                if let Some(state) = self.agents[owner_idx].invalidate(line) {
                    invalidations += 1;
                    self.stats.invalidations += 1;
                    if state.dirty() {
                        // Dirty data transferred; it also reaches memory in
                        // our home-writeback model.
                        self.push_writeback(line, AgentId(owner), WritebackCause::Invalidation);
                        forwarded = true;
                    }
                }
            }
            DirEntry::Owned(_) => {}
        }
        self.directory.set(line, DirEntry::Owned(agent.0));
        self.install(idx, line, LineState::Modified);
        AccessResult {
            hit: false,
            invalidations,
            forwarded,
        }
    }

    /// Memory-agent snoop of `line`: if any agent holds it Modified, the
    /// dirty data is flushed to memory (the agent keeps a Shared copy) and
    /// `true` is returned. This is what the Kona FPGA does before writing
    /// dirty lines to remote memory (§4.4).
    pub fn recall(&mut self, line: LineIndex) -> bool {
        self.stats.snoops += 1;
        if let DirEntry::Owned(owner) = self.directory.entry(line) {
            let owner_idx = owner as usize;
            if self.agents[owner_idx].state(line) == Some(LineState::Modified) {
                self.agents[owner_idx].set_state(line, LineState::Shared);
                self.directory.set(line, DirEntry::Shared(vec![owner]));
                self.push_writeback(line, AgentId(owner), WritebackCause::Snoop);
                return true;
            }
        }
        false
    }

    /// Invalidates `line` everywhere (e.g. the FPGA dropping a page from
    /// FMem must remove any CPU copies first). Returns whether any copy
    /// was dirty (and thus written back).
    pub fn invalidate_all(&mut self, line: LineIndex) -> bool {
        let mut was_dirty = false;
        match self.directory.entry(line) {
            DirEntry::Uncached => {}
            DirEntry::Shared(sharers) => {
                for s in sharers {
                    if self.agents[s as usize].invalidate(line).is_some() {
                        self.stats.invalidations += 1;
                    }
                }
            }
            DirEntry::Owned(owner) => {
                if let Some(state) = self.agents[owner as usize].invalidate(line) {
                    self.stats.invalidations += 1;
                    if state.dirty() {
                        self.push_writeback(line, AgentId(owner), WritebackCause::Invalidation);
                        was_dirty = true;
                    }
                }
            }
        }
        self.directory.set(line, DirEntry::Uncached);
        was_dirty
    }

    fn install(&mut self, idx: usize, line: LineIndex, state: LineState) {
        if let Some((victim, victim_state)) = self.agents[idx].install(line, state) {
            // Notify the directory of the displacement.
            self.directory.remove_agent(victim, idx as u32);
            if victim_state.dirty() {
                self.push_writeback(victim, AgentId(idx as u32), WritebackCause::Eviction);
            }
        }
    }

    fn push_writeback(&mut self, line: LineIndex, agent: AgentId, cause: WritebackCause) {
        self.stats.writebacks += 1;
        self.events.push_back(WritebackEvent { line, agent, cause });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};

    #[test]
    fn read_miss_installs_exclusive() {
        let mut sys = CoherenceSystem::new(2, 4);
        let r = sys.read(AgentId(0), LineIndex(1));
        assert!(!r.hit);
        assert_eq!(sys.agent_state(AgentId(0), LineIndex(1)), Some(LineState::Exclusive));
        assert_eq!(sys.directory_entry(LineIndex(1)), DirEntry::Owned(0));
    }

    #[test]
    fn exclusive_write_is_silent_upgrade() {
        let mut sys = CoherenceSystem::new(2, 4);
        sys.read(AgentId(0), LineIndex(1));
        let before = sys.stats().directory_transactions;
        let r = sys.write(AgentId(0), LineIndex(1));
        assert!(r.hit);
        assert_eq!(sys.stats().directory_transactions, before);
        assert_eq!(sys.agent_state(AgentId(0), LineIndex(1)), Some(LineState::Modified));
    }

    #[test]
    fn second_reader_downgrades_modified_owner() {
        let mut sys = CoherenceSystem::new(2, 4);
        sys.write(AgentId(0), LineIndex(1));
        let r = sys.read(AgentId(1), LineIndex(1));
        assert!(r.forwarded);
        assert_eq!(sys.agent_state(AgentId(0), LineIndex(1)), Some(LineState::Shared));
        assert_eq!(sys.agent_state(AgentId(1), LineIndex(1)), Some(LineState::Shared));
        let wb = sys.drain_writebacks();
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].cause, WritebackCause::Downgrade);
    }

    #[test]
    fn writer_invalidates_sharers() {
        let mut sys = CoherenceSystem::new(3, 4);
        sys.read(AgentId(0), LineIndex(1));
        sys.read(AgentId(1), LineIndex(1));
        let r = sys.write(AgentId(2), LineIndex(1));
        assert_eq!(r.invalidations, 2);
        assert_eq!(sys.agent_state(AgentId(0), LineIndex(1)), None);
        assert_eq!(sys.agent_state(AgentId(1), LineIndex(1)), None);
        assert_eq!(sys.directory_entry(LineIndex(1)), DirEntry::Owned(2));
    }

    #[test]
    fn shared_writer_upgrades_and_invalidates_peer() {
        let mut sys = CoherenceSystem::new(2, 4);
        sys.read(AgentId(0), LineIndex(1));
        sys.read(AgentId(1), LineIndex(1)); // both Shared
        let r = sys.write(AgentId(0), LineIndex(1));
        assert!(!r.hit); // upgrade needs a directory transaction
        assert_eq!(r.invalidations, 1);
        assert_eq!(sys.agent_state(AgentId(0), LineIndex(1)), Some(LineState::Modified));
    }

    #[test]
    fn capacity_eviction_of_dirty_line_emits_putm() {
        let mut sys = CoherenceSystem::new(1, 2);
        sys.write(AgentId(0), LineIndex(1));
        sys.write(AgentId(0), LineIndex(2));
        sys.write(AgentId(0), LineIndex(3)); // evicts line 1 (dirty)
        let wb = sys.drain_writebacks();
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].line, LineIndex(1));
        assert_eq!(wb[0].cause, WritebackCause::Eviction);
        // Directory forgets the evicted line.
        assert_eq!(sys.directory_entry(LineIndex(1)), DirEntry::Uncached);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut sys = CoherenceSystem::new(1, 2);
        sys.read(AgentId(0), LineIndex(1));
        sys.read(AgentId(0), LineIndex(2));
        sys.read(AgentId(0), LineIndex(3));
        assert!(sys.drain_writebacks().is_empty());
    }

    #[test]
    fn recall_flushes_dirty_line() {
        let mut sys = CoherenceSystem::new(2, 4);
        sys.write(AgentId(0), LineIndex(7));
        assert!(sys.recall(LineIndex(7)));
        assert_eq!(sys.agent_state(AgentId(0), LineIndex(7)), Some(LineState::Shared));
        assert_eq!(sys.drain_writebacks()[0].cause, WritebackCause::Snoop);
        // Second recall: nothing dirty.
        assert!(!sys.recall(LineIndex(7)));
    }

    #[test]
    fn invalidate_all_reports_dirty() {
        let mut sys = CoherenceSystem::new(2, 4);
        sys.write(AgentId(1), LineIndex(9));
        assert!(sys.invalidate_all(LineIndex(9)));
        assert_eq!(sys.agent_state(AgentId(1), LineIndex(9)), None);
        assert_eq!(sys.directory_entry(LineIndex(9)), DirEntry::Uncached);
        assert!(!sys.invalidate_all(LineIndex(9)));
    }

    #[test]
    fn hit_statistics() {
        let mut sys = CoherenceSystem::new(1, 4);
        sys.read(AgentId(0), LineIndex(1));
        sys.read(AgentId(0), LineIndex(1));
        sys.write(AgentId(0), LineIndex(1));
        let s = sys.agent_stats(AgentId(0));
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    fn swmr_holds(sys: &CoherenceSystem, lines: &[u64]) -> bool {
        for &l in lines {
            let line = LineIndex(l);
            let mut modified = 0;
            let mut others = 0;
            for a in 0..sys.agent_count() {
                match sys.agent_state(AgentId(a as u32), line) {
                    Some(LineState::Modified) | Some(LineState::Exclusive) => modified += 1,
                    Some(LineState::Shared) => others += 1,
                    None => {}
                }
            }
            if modified > 1 || (modified == 1 && others > 0) {
                return false;
            }
        }
        true
    }

    /// Single-writer/multiple-reader holds under arbitrary interleaved
    /// reads, writes, recalls and invalidations.
    #[test]
    fn prop_swmr_invariant() {
        let mut rng = StdRng::seed_from_u64(0x5317);
        for _ in 0..32 {
            let mut sys = CoherenceSystem::new(3, 4);
            let lines: Vec<u64> = (0..16).collect();
            for _ in 0..rng.gen_range(1usize..400) {
                let agent = rng.gen_range(0u32..3);
                let line = rng.gen_range(0u64..16);
                let op = rng.gen_range(0u8..4);
                let a = AgentId(agent);
                let l = LineIndex(line);
                match op {
                    0 => {
                        sys.read(a, l);
                    }
                    1 => {
                        sys.write(a, l);
                    }
                    2 => {
                        sys.recall(l);
                    }
                    _ => {
                        sys.invalidate_all(l);
                    }
                }
                assert!(
                    swmr_holds(&sys, &lines),
                    "SWMR violated after op {op:?} on line {line}"
                );
            }
        }
    }

    /// Directory ownership agrees with agent states: if the directory
    /// says Owned(a), no *other* agent holds the line.
    #[test]
    fn prop_directory_agrees() {
        let mut rng = StdRng::seed_from_u64(0xD14);
        for _ in 0..32 {
            let mut sys = CoherenceSystem::new(2, 4);
            for _ in 0..rng.gen_range(1usize..300) {
                let agent = rng.gen_range(0u32..2);
                let line = rng.gen_range(0u64..8);
                if rng.gen() {
                    sys.write(AgentId(agent), LineIndex(line));
                } else {
                    sys.read(AgentId(agent), LineIndex(line));
                }
                for l in 0..8u64 {
                    if let DirEntry::Owned(o) = sys.directory_entry(LineIndex(l)) {
                        for a in 0..2u32 {
                            if a != o {
                                assert_eq!(sys.agent_state(AgentId(a), LineIndex(l)), None);
                            }
                        }
                    }
                }
            }
        }
    }
}
