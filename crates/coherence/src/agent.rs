//! A per-CPU cache agent holding MESI line states.

use crate::lru::LruList;
use kona_types::{FxHashMap, LineIndex};

/// MESI stable states for a line in a cache agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Dirty, exclusive copy.
    Modified,
    /// Clean, exclusive copy (silent upgrade to Modified allowed).
    Exclusive,
    /// Clean, possibly shared copy.
    Shared,
}

impl LineState {
    /// Whether this state permits a write hit without a directory message.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// Whether the copy is dirty with respect to memory.
    pub fn dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

/// Per-agent counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Read or write hits served entirely by this cache.
    pub hits: u64,
    /// Accesses requiring a directory transaction.
    pub misses: u64,
    /// Lines displaced by capacity.
    pub capacity_evictions: u64,
    /// Invalidation messages honoured.
    pub invalidations_received: u64,
}

/// A CPU cache at line granularity: a capacity-bounded map from line to
/// MESI state with LRU replacement.
///
/// Agents do not act on their own; [`crate::CoherenceSystem`] drives them
/// and the directory together. The public surface is useful for inspecting
/// protocol state in tests and in the FPGA model.
///
/// # Examples
///
/// ```
/// # use kona_coherence::{CacheAgent, LineState};
/// # use kona_types::LineIndex;
/// let mut a = CacheAgent::new(2);
/// a.install(LineIndex(1), LineState::Exclusive);
/// assert_eq!(a.state(LineIndex(1)), Some(LineState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct CacheAgent {
    capacity: usize,
    /// Fx-hashed: line numbers are simulator-generated, not adversarial,
    /// and this map is probed on every access.
    lines: FxHashMap<u64, LineState>,
    lru: LruList,
    stats: AgentStats,
}

impl CacheAgent {
    /// Creates an agent holding at most `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "agent capacity must be positive");
        CacheAgent {
            capacity,
            lines: FxHashMap::default(),
            lru: LruList::with_capacity(capacity),
            stats: AgentStats::default(),
        }
    }

    /// Current state of `line`, if cached.
    pub fn state(&self, line: LineIndex) -> Option<LineState> {
        self.lines.get(&line.raw()).copied()
    }

    /// Number of cached lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` if no lines are cached.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Lines currently in [`LineState::Modified`].
    pub fn modified_lines(&self) -> Vec<LineIndex> {
        let mut v: Vec<LineIndex> = self
            .lines
            .iter()
            .filter(|(_, s)| s.dirty())
            .map(|(&l, _)| LineIndex(l))
            .collect();
        v.sort_unstable();
        v
    }

    /// Installs `line` in `state`, touching LRU order. If the cache is at
    /// capacity, evicts the LRU line and returns `(line, state)` of the
    /// victim.
    pub fn install(
        &mut self,
        line: LineIndex,
        state: LineState,
    ) -> Option<(LineIndex, LineState)> {
        let mut victim = None;
        if !self.lines.contains_key(&line.raw()) && self.lines.len() == self.capacity {
            let v = self.lru.pop_lru().expect("capacity > 0 implies LRU entry");
            let vs = self.lines.remove(&v).expect("LRU entry must be cached");
            self.stats.capacity_evictions += 1;
            victim = Some((LineIndex(v), vs));
        }
        self.lines.insert(line.raw(), state);
        self.lru.touch(line.raw());
        victim
    }

    /// Records a hit on `line` (LRU touch + counter).
    pub(crate) fn note_hit(&mut self, line: LineIndex) {
        self.stats.hits += 1;
        self.lru.touch(line.raw());
    }

    /// Records a miss (counter only; install happens separately).
    pub(crate) fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Changes the state of a cached line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not cached — protocol bugs should fail loudly.
    pub(crate) fn set_state(&mut self, line: LineIndex, state: LineState) {
        let slot = self
            .lines
            .get_mut(&line.raw())
            .expect("state change for uncached line");
        *slot = state;
    }

    /// Drops `line` (invalidation); returns the old state if it was cached.
    pub fn invalidate(&mut self, line: LineIndex) -> Option<LineState> {
        let old = self.lines.remove(&line.raw());
        if old.is_some() {
            self.lru.remove(line.raw());
            self.stats.invalidations_received += 1;
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(LineState::Modified.writable() && LineState::Modified.dirty());
        assert!(LineState::Exclusive.writable() && !LineState::Exclusive.dirty());
        assert!(!LineState::Shared.writable());
    }

    #[test]
    fn install_and_state() {
        let mut a = CacheAgent::new(2);
        assert!(a.install(LineIndex(1), LineState::Shared).is_none());
        assert_eq!(a.state(LineIndex(1)), Some(LineState::Shared));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn capacity_eviction_returns_victim() {
        let mut a = CacheAgent::new(2);
        a.install(LineIndex(1), LineState::Modified);
        a.install(LineIndex(2), LineState::Shared);
        let victim = a.install(LineIndex(3), LineState::Exclusive);
        assert_eq!(victim, Some((LineIndex(1), LineState::Modified)));
        assert_eq!(a.stats().capacity_evictions, 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn reinstall_does_not_evict() {
        let mut a = CacheAgent::new(1);
        a.install(LineIndex(1), LineState::Shared);
        assert!(a.install(LineIndex(1), LineState::Modified).is_none());
        assert_eq!(a.state(LineIndex(1)), Some(LineState::Modified));
    }

    #[test]
    fn invalidate() {
        let mut a = CacheAgent::new(2);
        a.install(LineIndex(1), LineState::Modified);
        assert_eq!(a.invalidate(LineIndex(1)), Some(LineState::Modified));
        assert_eq!(a.invalidate(LineIndex(1)), None);
        assert_eq!(a.stats().invalidations_received, 1);
    }

    #[test]
    fn modified_lines_sorted() {
        let mut a = CacheAgent::new(4);
        a.install(LineIndex(5), LineState::Modified);
        a.install(LineIndex(2), LineState::Modified);
        a.install(LineIndex(3), LineState::Shared);
        assert_eq!(a.modified_lines(), vec![LineIndex(2), LineIndex(5)]);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        CacheAgent::new(0);
    }
}
