//! A MESI directory cache-coherence simulator.
//!
//! Kona's core insight (§3) is that the hardware *already* tracks every
//! read and write through cache coherence: a memory controller (or a
//! cache-coherent FPGA exporting VFMem) sees a `GetS`/`GetM` request for
//! every line the CPU pulls in and a writeback for every modified line the
//! CPU evicts. This crate simulates that machinery:
//!
//! * [`CacheAgent`] — a CPU cache at line granularity with MESI states and
//!   LRU capacity evictions.
//! * [`Directory`] — the home agent tracking owner/sharers per line.
//! * [`CoherenceSystem`] — wires agents and directory together, exposes
//!   [`CoherenceSystem::read`] / [`CoherenceSystem::write`] /
//!   [`CoherenceSystem::recall`] (the FPGA's snoop), and queues
//!   [`WritebackEvent`]s — precisely the stream the Kona FPGA turns into
//!   dirty cache-line bitmaps (the `track-local-data` primitive).
//!
//! The protocol maintains the single-writer/multiple-reader invariant,
//! verified by property tests.
//!
//! # Examples
//!
//! ```
//! use kona_coherence::{AgentId, CoherenceSystem};
//! use kona_types::LineIndex;
//!
//! let mut sys = CoherenceSystem::new(2, 4); // 2 agents, 4-line caches
//! sys.write(AgentId(0), LineIndex(1));
//! // Agent 1 reading the line forces agent 0's dirty copy back to memory.
//! sys.read(AgentId(1), LineIndex(1));
//! let events = sys.drain_writebacks();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].line, LineIndex(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod directory;
mod lru;
mod system;

pub use agent::{AgentStats, CacheAgent, LineState};
pub use directory::{DirEntry, Directory};
pub use system::{
    AccessResult, AgentId, CoherenceStats, CoherenceSystem, WritebackCause, WritebackEvent,
};
