//! The coherence directory (home agent).

use kona_types::{FxHashMap, LineIndex};

/// Directory-side state for one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirEntry {
    /// No cache holds the line.
    Uncached,
    /// One or more caches hold clean copies.
    Shared(Vec<u32>),
    /// Exactly one cache holds the line in Exclusive or Modified state.
    Owned(u32),
}

/// The directory maps lines to their sharers/owner. Kona's FPGA implements
/// exactly this structure for VFMem ("The FPGA implements a memory agent
/// that maintains a directory for VFMem, similar to current directories in
/// the CPU", §4.3).
///
/// # Examples
///
/// ```
/// # use kona_coherence::{DirEntry, Directory};
/// # use kona_types::LineIndex;
/// let mut dir = Directory::new();
/// dir.set(LineIndex(3), DirEntry::Owned(0));
/// assert_eq!(dir.entry(LineIndex(3)), DirEntry::Owned(0));
/// assert_eq!(dir.entry(LineIndex(4)), DirEntry::Uncached);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// Fx-hashed: probed on every directory transaction.
    entries: FxHashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory (all lines uncached).
    pub fn new() -> Self {
        Directory::default()
    }

    /// The entry for `line` ([`DirEntry::Uncached`] if never set).
    pub fn entry(&self, line: LineIndex) -> DirEntry {
        self.entries
            .get(&line.raw())
            .cloned()
            .unwrap_or(DirEntry::Uncached)
    }

    /// Sets the entry for `line`; `Uncached` removes the map slot.
    pub fn set(&mut self, line: LineIndex, entry: DirEntry) {
        match entry {
            DirEntry::Uncached => {
                self.entries.remove(&line.raw());
            }
            e => {
                self.entries.insert(line.raw(), e);
            }
        }
    }

    /// Adds `agent` to the sharer set of `line`.
    ///
    /// # Panics
    ///
    /// Panics if the line is currently owned — the caller must downgrade
    /// the owner first; calling this directly would violate SWMR.
    pub fn add_sharer(&mut self, line: LineIndex, agent: u32) {
        let entry = self.entry(line);
        match entry {
            DirEntry::Uncached => self.set(line, DirEntry::Shared(vec![agent])),
            DirEntry::Shared(mut s) => {
                if !s.contains(&agent) {
                    s.push(agent);
                }
                self.set(line, DirEntry::Shared(s));
            }
            DirEntry::Owned(_) => panic!("add_sharer on owned line violates SWMR"),
        }
    }

    /// Removes `agent` from `line`'s sharers/ownership (e.g. after a silent
    /// eviction notification). No-op if not present.
    pub fn remove_agent(&mut self, line: LineIndex, agent: u32) {
        match self.entry(line) {
            DirEntry::Uncached => {}
            DirEntry::Shared(mut s) => {
                s.retain(|&a| a != agent);
                if s.is_empty() {
                    self.set(line, DirEntry::Uncached);
                } else {
                    self.set(line, DirEntry::Shared(s));
                }
            }
            DirEntry::Owned(o) => {
                if o == agent {
                    self.set(line, DirEntry::Uncached);
                }
            }
        }
    }

    /// Number of tracked (non-uncached) lines.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uncached() {
        let dir = Directory::new();
        assert_eq!(dir.entry(LineIndex(1)), DirEntry::Uncached);
        assert_eq!(dir.tracked_lines(), 0);
    }

    #[test]
    fn sharer_set_management() {
        let mut dir = Directory::new();
        dir.add_sharer(LineIndex(1), 0);
        dir.add_sharer(LineIndex(1), 1);
        dir.add_sharer(LineIndex(1), 1); // idempotent
        assert_eq!(dir.entry(LineIndex(1)), DirEntry::Shared(vec![0, 1]));
        dir.remove_agent(LineIndex(1), 0);
        assert_eq!(dir.entry(LineIndex(1)), DirEntry::Shared(vec![1]));
        dir.remove_agent(LineIndex(1), 1);
        assert_eq!(dir.entry(LineIndex(1)), DirEntry::Uncached);
    }

    #[test]
    fn owned_transitions() {
        let mut dir = Directory::new();
        dir.set(LineIndex(2), DirEntry::Owned(3));
        assert_eq!(dir.tracked_lines(), 1);
        dir.remove_agent(LineIndex(2), 2); // wrong agent: no-op
        assert_eq!(dir.entry(LineIndex(2)), DirEntry::Owned(3));
        dir.remove_agent(LineIndex(2), 3);
        assert_eq!(dir.entry(LineIndex(2)), DirEntry::Uncached);
    }

    #[test]
    #[should_panic]
    fn add_sharer_to_owned_panics() {
        let mut dir = Directory::new();
        dir.set(LineIndex(1), DirEntry::Owned(0));
        dir.add_sharer(LineIndex(1), 1);
    }
}
