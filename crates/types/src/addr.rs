//! Strongly-typed addresses.
//!
//! Kona's design distinguishes three address spaces that are easy to confuse
//! when they are all `u64`:
//!
//! * [`VirtAddr`] — a process virtual address (what the application sees).
//! * [`VfMemAddr`] — an address in *VFMem*, the fake physical address space
//!   exported by the cache-coherent FPGA and backed by remote memory.
//! * [`RemoteAddr`] — a `(memory node, offset)` location in disaggregated
//!   memory.
//!
//! Newtypes keep translations explicit: page tables map `VirtAddr →
//! VfMemAddr`, and the FPGA's remote-translation hashmap maps `VfMemAddr →
//! RemoteAddr`.

use crate::size::{CACHE_LINE_SIZE, PAGE_SIZE_4K};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw address value.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw address value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The 4 KiB page number containing this address.
            pub const fn page_number(self) -> PageNumber {
                PageNumber(self.0 / PAGE_SIZE_4K)
            }

            /// The offset of this address within its 4 KiB page.
            pub const fn page_offset(self) -> u64 {
                self.0 % PAGE_SIZE_4K
            }

            /// The global cache-line index containing this address.
            pub const fn line_index(self) -> LineIndex {
                LineIndex(self.0 / CACHE_LINE_SIZE)
            }

            /// This address rounded down to its cache-line start.
            pub const fn line_start(self) -> Self {
                $name(self.0 & !(CACHE_LINE_SIZE - 1))
            }

            /// This address rounded down to its 4 KiB page start.
            pub const fn page_start(self) -> Self {
                $name(self.0 & !(PAGE_SIZE_4K - 1))
            }

            /// Checked addition of a byte offset.
            pub fn checked_add(self, offset: u64) -> Option<Self> {
                self.0.checked_add(offset).map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

addr_newtype! {
    /// A process virtual address.
    ///
    /// # Examples
    ///
    /// ```
    /// # use kona_types::VirtAddr;
    /// let a = VirtAddr::new(0x1042);
    /// assert_eq!(a.page_number().raw(), 1);
    /// assert_eq!(a.page_offset(), 0x42);
    /// assert_eq!(a.line_start(), VirtAddr::new(0x1040));
    /// ```
    VirtAddr
}

addr_newtype! {
    /// An address in VFMem, the fake physical address space exported by the
    /// cache-coherent FPGA (§4.3 of the paper). VFMem is larger than the
    /// FPGA-attached DRAM (FMem) and is backed by remote memory.
    VfMemAddr
}

/// A location in disaggregated memory: a memory node plus a byte offset into
/// that node's registered pool.
///
/// # Examples
///
/// ```
/// # use kona_types::RemoteAddr;
/// let r = RemoteAddr::new(2, 0x8000);
/// assert_eq!(r.node(), 2);
/// assert_eq!(r.offset(), 0x8000);
/// assert_eq!(r.add(0x40).offset(), 0x8040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RemoteAddr {
    node: u32,
    offset: u64,
}

impl RemoteAddr {
    /// Creates a remote address on `node` at byte `offset`.
    pub const fn new(node: u32, offset: u64) -> Self {
        RemoteAddr { node, offset }
    }

    /// The memory node identifier.
    pub const fn node(self) -> u32 {
        self.node
    }

    /// The byte offset within the node's memory pool.
    pub const fn offset(self) -> u64 {
        self.offset
    }

    /// Returns this address advanced by `bytes` on the same node.
    #[must_use]
    pub const fn add(self, bytes: u64) -> Self {
        RemoteAddr {
            node: self.node,
            offset: self.offset + bytes,
        }
    }
}

impl fmt::Display for RemoteAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}:{:#x}", self.node, self.offset)
    }
}

/// A 4 KiB page number (an address shifted right by 12 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNumber(pub u64);

impl PageNumber {
    /// The raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first address of this page, as a virtual address.
    pub const fn base_virt(self) -> VirtAddr {
        VirtAddr::new(self.0 * PAGE_SIZE_4K)
    }

    /// The first address of this page, as a VFMem address.
    pub const fn base_vfmem(self) -> VfMemAddr {
        VfMemAddr::new(self.0 * PAGE_SIZE_4K)
    }
}

impl fmt::Display for PageNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn{:#x}", self.0)
    }
}

/// A global cache-line index (an address shifted right by 6 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineIndex(pub u64);

impl LineIndex {
    /// The raw line index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this line (as a virtual address).
    pub const fn base_virt(self) -> VirtAddr {
        VirtAddr::new(self.0 * CACHE_LINE_SIZE)
    }

    /// The 4 KiB page this line belongs to.
    pub const fn page_number(self) -> PageNumber {
        PageNumber(self.0 / (PAGE_SIZE_4K / CACHE_LINE_SIZE))
    }

    /// The index of this line within its 4 KiB page (0..64).
    pub const fn index_in_page(self) -> usize {
        (self.0 % (PAGE_SIZE_4K / CACHE_LINE_SIZE)) as usize
    }
}

impl fmt::Display for LineIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_page_math() {
        let a = VirtAddr::new(0x3042);
        assert_eq!(a.page_number(), PageNumber(3));
        assert_eq!(a.page_offset(), 0x42);
        assert_eq!(a.page_start(), VirtAddr::new(0x3000));
        assert_eq!(a.line_start(), VirtAddr::new(0x3040));
        assert_eq!(a.line_index(), LineIndex(0x3042 / 64));
    }

    #[test]
    fn addr_arithmetic() {
        let a = VirtAddr::new(100);
        assert_eq!(a + 28, VirtAddr::new(128));
        assert_eq!(VirtAddr::new(128) - a, 28);
        let mut b = a;
        b += 1;
        assert_eq!(b.raw(), 101);
        assert_eq!(a.checked_add(u64::MAX), None);
    }

    #[test]
    fn line_index_page_relationship() {
        let l = LineIndex(65);
        assert_eq!(l.page_number(), PageNumber(1));
        assert_eq!(l.index_in_page(), 1);
        assert_eq!(l.base_virt(), VirtAddr::new(65 * 64));
    }

    #[test]
    fn page_number_bases() {
        let p = PageNumber(2);
        assert_eq!(p.base_virt().raw(), 8192);
        assert_eq!(p.base_vfmem().raw(), 8192);
    }

    #[test]
    fn remote_addr_ops() {
        let r = RemoteAddr::new(1, 4096);
        assert_eq!(r.add(64), RemoteAddr::new(1, 4160));
        assert_eq!(r.to_string(), "node1:0x1000");
    }

    #[test]
    fn distinct_types_do_not_compare() {
        // Compile-time property: VirtAddr and VfMemAddr are distinct types.
        // (This test simply documents the intent.)
        let v = VirtAddr::new(1);
        let f = VfMemAddr::new(1);
        assert_eq!(v.raw(), f.raw());
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr::new(0x10).to_string(), "VirtAddr(0x10)");
        assert_eq!(format!("{:x}", VfMemAddr::new(255)), "ff");
        assert_eq!(PageNumber(1).to_string(), "pfn0x1");
        assert_eq!(LineIndex(1).to_string(), "line0x1");
    }
}
