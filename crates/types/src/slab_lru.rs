//! A slab-backed intrusive LRU order list over `u64` keys.
//!
//! The previous design kept a `HashMap<u64, (Option<u64>, Option<u64>)>`
//! of doubly-linked neighbour keys: every touch did several SipHash map
//! probes and re-inserted the entry (allocation churn on growth). This
//! version stores the links in a slab (`Vec` of nodes addressed by `u32`
//! slot index, with an internal free list) and keeps a single
//! [`FxHashMap`](crate::FxHashMap) from key to slot. A touch of a resident
//! key is one cheap Fx probe plus a constant number of slab pointer
//! updates — no allocation, no re-hashing of neighbours.
//!
//! Used by the coherence cache agents (per-access LRU touch is on the
//! simulator's hottest path) and the VM reclaim list.
//!
//! # Examples
//!
//! ```
//! use kona_types::SlabLru;
//!
//! let mut lru = SlabLru::new();
//! lru.touch(1);
//! lru.touch(2);
//! lru.touch(1); // 1 becomes MRU again
//! assert_eq!(lru.pop_lru(), Some(2));
//! assert_eq!(lru.pop_lru(), Some(1));
//! assert_eq!(lru.pop_lru(), None);
//! ```

use crate::FxHashMap;

/// Sentinel slot meaning "no neighbour".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: u32,
    next: u32,
}

/// An O(1) LRU order list: slab-backed intrusive doubly-linked list plus a
/// key→slot index. See the [module docs](self) for the design rationale.
#[derive(Debug, Clone)]
pub struct SlabLru {
    slots: Vec<Node>,
    index: FxHashMap<u64, u32>,
    free: Vec<u32>,
    /// MRU end.
    head: u32,
    /// LRU end.
    tail: u32,
}

/// A derived `Default` would zero `head`/`tail`, aliasing slot 0 — the
/// empty-list sentinel must be [`NIL`].
impl Default for SlabLru {
    fn default() -> Self {
        SlabLru::new()
    }
}

impl SlabLru {
    /// Creates an empty list.
    pub fn new() -> Self {
        SlabLru {
            slots: Vec::new(),
            index: FxHashMap::default(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates an empty list with room for `capacity` keys before any slab
    /// or index growth.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut lru = SlabLru::new();
        lru.slots.reserve(capacity);
        lru.index.reserve(capacity);
        lru
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// The least-recently-used key without removing it.
    pub fn peek_lru(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.slots[self.tail as usize].key)
    }

    /// Moves `key` to the MRU position, inserting it if untracked.
    pub fn touch(&mut self, key: u64) {
        if let Some(&slot) = self.index.get(&key) {
            if slot == self.head {
                return;
            }
            self.detach(slot);
            self.attach_head(slot);
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slab slot overflow");
                self.slots.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                s
            }
        };
        self.index.insert(key, slot);
        self.attach_head(slot);
    }

    /// Removes and returns the least-recently-used key.
    pub fn pop_lru(&mut self) -> Option<u64> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let key = self.slots[slot as usize].key;
        self.detach(slot);
        self.index.remove(&key);
        self.free.push(slot);
        Some(key)
    }

    /// Removes `key` from the list; returns whether it was tracked.
    pub fn remove(&mut self, key: u64) -> bool {
        let Some(slot) = self.index.remove(&key) else {
            return false;
        };
        self.detach(slot);
        self.free.push(slot);
        true
    }

    /// Drops every key, keeping the slab and index storage for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Unlinks `slot` from the list (it stays in the slab).
    fn detach(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.slots[slot as usize];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let node = &mut self.slots[slot as usize];
        node.prev = NIL;
        node.next = NIL;
    }

    /// Links `slot` in at the MRU end.
    fn attach_head(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let node = &mut self.slots[slot as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    #[test]
    fn order_and_ops() {
        let mut l = SlabLru::new();
        l.touch(1);
        l.touch(2);
        l.touch(3);
        l.touch(1);
        assert_eq!(l.len(), 3);
        assert_eq!(l.peek_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(2));
        assert!(l.remove(3));
        assert!(!l.remove(3));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut l = SlabLru::with_capacity(2);
        for round in 0..100u64 {
            l.touch(round);
            l.touch(round + 1000);
            assert_eq!(l.pop_lru(), Some(round));
            assert!(l.remove(round + 1000));
        }
        // Two live keys at a time: the slab never grows past the pair.
        assert!(l.slots.len() <= 2, "slab grew to {}", l.slots.len());
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = SlabLru::new();
        l.touch(5);
        l.touch(5);
        l.touch(5);
        assert_eq!(l.len(), 1);
        assert_eq!(l.pop_lru(), Some(5));
    }

    /// `Default` must produce a genuinely empty list (NIL sentinels, not
    /// zeroed head/tail aliasing slot 0).
    #[test]
    fn default_is_empty_and_usable() {
        let mut l = SlabLru::default();
        for k in 1..=3u64 {
            l.touch(k);
        }
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn clear_resets() {
        let mut l = SlabLru::new();
        l.touch(1);
        l.touch(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.pop_lru(), None);
        l.touch(9);
        assert_eq!(l.pop_lru(), Some(9));
    }

    /// Behaves identically to a naive VecDeque model under random ops.
    #[test]
    fn prop_matches_vecdeque_model() {
        use std::collections::VecDeque;
        let mut rng = StdRng::seed_from_u64(0x51AB);
        let mut lru = SlabLru::new();
        // Model: front = MRU, back = LRU.
        let mut model: VecDeque<u64> = VecDeque::new();
        for step in 0..10_000 {
            let key = rng.gen_range(0u64..64);
            match rng.gen_range(0u8..4) {
                0 | 1 => {
                    lru.touch(key);
                    model.retain(|&k| k != key);
                    model.push_front(key);
                }
                2 => {
                    let got = lru.pop_lru();
                    let want = model.pop_back();
                    assert_eq!(got, want, "step {step}: pop mismatch");
                }
                _ => {
                    let got = lru.remove(key);
                    let had = model.contains(&key);
                    model.retain(|&k| k != key);
                    assert_eq!(got, had, "step {step}: remove mismatch");
                }
            }
            assert_eq!(lru.len(), model.len(), "step {step}: len mismatch");
            assert_eq!(lru.peek_lru(), model.back().copied(), "step {step}");
        }
    }
}
