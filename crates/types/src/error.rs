//! The shared error type for the Kona workspace.

use crate::addr::{RemoteAddr, VfMemAddr, VirtAddr};
use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for `Result<T, KonaError>`.
pub type Result<T> = std::result::Result<T, KonaError>;

/// Errors produced by the Kona runtime and its simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KonaError {
    /// A virtual address was accessed with no mapping installed.
    Unmapped(VirtAddr),
    /// A VFMem address has no remote translation registered.
    NoRemoteTranslation(VfMemAddr),
    /// The rack controller has no free slabs left to satisfy an allocation.
    OutOfRemoteMemory {
        /// Bytes requested from the controller.
        requested: u64,
        /// Bytes still available across all memory nodes.
        available: u64,
    },
    /// The compute node's local allocator exhausted its reserved slabs and
    /// the controller could not provide more.
    OutOfLocalReservation,
    /// An RDMA verb referenced memory outside any registered region.
    UnregisteredMemory {
        /// The offending remote location.
        addr: RemoteAddr,
        /// Length of the attempted transfer.
        len: u64,
    },
    /// The referenced memory node does not exist or has been removed.
    UnknownMemoryNode(u32),
    /// A network operation exceeded the coherence-protocol deadline and
    /// raised a (simulated) machine-check exception (§4.5).
    CoherenceTimeout {
        /// The VFMem address whose fill timed out.
        addr: VfMemAddr,
        /// The configured deadline in nanoseconds.
        deadline_ns: u64,
    },
    /// A memory node failed while holding application data.
    MemoryNodeFailed(u32),
    /// Not enough replicas acknowledged an eviction writeback.
    ReplicationQuorumFailed {
        /// Acks received.
        acked: usize,
        /// Acks required.
        required: usize,
    },
    /// An operation was attempted on a runtime that has been shut down.
    RuntimeShutDown,
    /// A configuration value was invalid (message explains which).
    InvalidConfig(String),
}

impl fmt::Display for KonaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KonaError::Unmapped(addr) => write!(f, "no mapping for {addr}"),
            KonaError::NoRemoteTranslation(addr) => {
                write!(f, "no remote translation for {addr}")
            }
            KonaError::OutOfRemoteMemory {
                requested,
                available,
            } => write!(
                f,
                "out of remote memory: requested {requested} bytes, {available} available"
            ),
            KonaError::OutOfLocalReservation => {
                f.write_str("local slab reservation exhausted")
            }
            KonaError::UnregisteredMemory { addr, len } => {
                write!(f, "rdma access to unregistered memory at {addr} len {len}")
            }
            KonaError::UnknownMemoryNode(node) => {
                write!(f, "unknown memory node {node}")
            }
            KonaError::CoherenceTimeout { addr, deadline_ns } => write!(
                f,
                "coherence fill for {addr} exceeded {deadline_ns}ns deadline (machine check)"
            ),
            KonaError::MemoryNodeFailed(node) => {
                write!(f, "memory node {node} failed")
            }
            KonaError::ReplicationQuorumFailed { acked, required } => write!(
                f,
                "replication quorum failed: {acked} of {required} acks"
            ),
            KonaError::RuntimeShutDown => f.write_str("runtime has been shut down"),
            KonaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl StdError for KonaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KonaError::Unmapped(VirtAddr::new(0x42));
        assert_eq!(e.to_string(), "no mapping for VirtAddr(0x42)");
        let e = KonaError::OutOfRemoteMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = KonaError::ReplicationQuorumFailed {
            acked: 1,
            required: 3,
        };
        assert!(e.to_string().contains("1 of 3"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<KonaError>();
    }
}
