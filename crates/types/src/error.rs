//! The shared error type for the Kona workspace.

use crate::addr::{RemoteAddr, VfMemAddr, VirtAddr};
use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for `Result<T, KonaError>`.
pub type Result<T> = std::result::Result<T, KonaError>;

/// Why an injected fault interrupted a verb (see `kona-net`'s fault
/// injector). Lives here so [`KonaError`] can carry it without a
/// dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerbFaultKind {
    /// The packet was dropped on the wire; the NIC observed no
    /// acknowledgment.
    Dropped,
    /// The payload failed the transport's invariant CRC at the remote NIC
    /// and was rejected (RoCE ICRC); no corrupt data ever lands.
    Corrupted,
    /// The verb exceeded its deadline while the network was unresponsive.
    TimedOut,
}

impl fmt::Display for VerbFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VerbFaultKind::Dropped => "dropped",
            VerbFaultKind::Corrupted => "corrupted",
            VerbFaultKind::TimedOut => "timed out",
        })
    }
}

/// Errors produced by the Kona runtime and its simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KonaError {
    /// A virtual address was accessed with no mapping installed.
    Unmapped(VirtAddr),
    /// A VFMem address has no remote translation registered.
    NoRemoteTranslation(VfMemAddr),
    /// The rack controller has no free slabs left to satisfy an allocation.
    OutOfRemoteMemory {
        /// Bytes requested from the controller.
        requested: u64,
        /// Bytes still available across all memory nodes.
        available: u64,
        /// Per-node occupancy summary (e.g. `node0 4/4MiB, node1 3/4MiB`),
        /// so the operator can see *which* nodes are full. Empty when the
        /// producer has no per-node view.
        occupancy: String,
    },
    /// The compute node's local allocator exhausted its reserved slabs and
    /// the controller could not provide more.
    OutOfLocalReservation,
    /// An RDMA verb referenced memory outside any registered region.
    UnregisteredMemory {
        /// The offending remote location.
        addr: RemoteAddr,
        /// Length of the attempted transfer.
        len: u64,
    },
    /// The referenced memory node does not exist or has been removed.
    UnknownMemoryNode(u32),
    /// A network operation exceeded the coherence-protocol deadline and
    /// raised a (simulated) machine-check exception (§4.5).
    CoherenceTimeout {
        /// The VFMem address whose fill timed out.
        addr: VfMemAddr,
        /// The configured deadline in nanoseconds.
        deadline_ns: u64,
    },
    /// A memory node failed while holding application data.
    MemoryNodeFailed(u32),
    /// An injected network fault interrupted a posted chain. Work requests
    /// before `executed` landed (verbs are idempotent, so re-posting the
    /// whole chain is safe); requests from `executed` on did not run.
    VerbFault {
        /// The node the faulting request targeted.
        node: u32,
        /// What the fault was.
        kind: VerbFaultKind,
        /// Number of work requests that executed before the fault.
        executed: u32,
    },
    /// Not enough replicas acknowledged an eviction writeback.
    ReplicationQuorumFailed {
        /// Acks received.
        acked: usize,
        /// Acks required.
        required: usize,
    },
    /// A write carrying a stale membership epoch was rejected by a fenced
    /// memory node: the controller bumped the node's epoch (lease expiry
    /// during a partition) and applies stamped with the old epoch must
    /// never land. Permanent for that batch — the node re-syncs instead.
    FencedEpoch {
        /// The node that rejected the apply.
        node: u32,
        /// The stale epoch the write carried.
        stale: u64,
        /// The node's current (fenced) epoch.
        current: u64,
    },
    /// A tenant's allocation request would push it past its remote-memory
    /// quota. The serving front end rejects the request before any slab is
    /// granted, so quota enforcement is exact — `used` never exceeds
    /// `quota`. Permanent for that request: retrying cannot help until the
    /// tenant shrinks its balloon or its quota is raised.
    QuotaExceeded {
        /// The tenant whose request was rejected.
        tenant: u32,
        /// Bytes the tenant asked for.
        requested: u64,
        /// The tenant's configured quota in bytes.
        quota: u64,
        /// Bytes already allocated to the tenant.
        used: u64,
    },
    /// A tenant touched an address outside its own translation namespace —
    /// either unmapped in its address space or belonging to another
    /// tenant. The access never reaches the shared runtime, so tenants
    /// cannot read or clobber each other's lines. Permanent: the address
    /// is simply not the tenant's to use.
    TenantFault {
        /// The tenant that issued the faulting access.
        tenant: u32,
        /// The tenant-local virtual address it touched.
        addr: VirtAddr,
        /// Length of the attempted access in bytes.
        len: u64,
    },
    /// An operation was attempted on a runtime that has been shut down.
    RuntimeShutDown,
    /// A configuration value was invalid (message explains which).
    InvalidConfig(String),
}

impl KonaError {
    /// Whether the error may clear on its own and is worth retrying: an
    /// injected wire fault (dropped/corrupted/timed-out verb) or a failed
    /// node that might be flapping rather than dead. Address, registration
    /// and configuration errors are permanent — retrying cannot fix them.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            KonaError::VerbFault { .. } | KonaError::MemoryNodeFailed(_)
        )
    }

    /// The memory node implicated in a transient failure, if any (the
    /// failure-recovery engine tracks per-node health with this).
    pub fn failed_node(&self) -> Option<u32> {
        match self {
            KonaError::VerbFault { node, .. } | KonaError::MemoryNodeFailed(node) => Some(*node),
            _ => None,
        }
    }
}

impl fmt::Display for KonaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KonaError::Unmapped(addr) => write!(f, "no mapping for {addr}"),
            KonaError::NoRemoteTranslation(addr) => {
                write!(f, "no remote translation for {addr}")
            }
            KonaError::OutOfRemoteMemory {
                requested,
                available,
                occupancy,
            } => {
                write!(
                    f,
                    "out of remote memory: requested {requested} bytes, {available} available"
                )?;
                if occupancy.is_empty() {
                    Ok(())
                } else {
                    write!(f, " ({occupancy})")
                }
            }
            KonaError::OutOfLocalReservation => {
                f.write_str("local slab reservation exhausted")
            }
            KonaError::UnregisteredMemory { addr, len } => {
                write!(f, "rdma access to unregistered memory at {addr} len {len}")
            }
            KonaError::UnknownMemoryNode(node) => {
                write!(f, "unknown memory node {node}")
            }
            KonaError::CoherenceTimeout { addr, deadline_ns } => write!(
                f,
                "coherence fill for {addr} exceeded {deadline_ns}ns deadline (machine check)"
            ),
            KonaError::MemoryNodeFailed(node) => {
                write!(f, "memory node {node} failed")
            }
            KonaError::VerbFault {
                node,
                kind,
                executed,
            } => write!(
                f,
                "verb to node {node} {kind} after {executed} chained requests executed"
            ),
            KonaError::ReplicationQuorumFailed { acked, required } => write!(
                f,
                "replication quorum failed: {acked} of {required} acks"
            ),
            KonaError::FencedEpoch {
                node,
                stale,
                current,
            } => write!(
                f,
                "write with stale epoch {stale} fenced at node {node} (current epoch {current})"
            ),
            KonaError::QuotaExceeded {
                tenant,
                requested,
                quota,
                used,
            } => write!(
                f,
                "tenant {tenant} quota exceeded: requested {requested} bytes with {used} of {quota} in use"
            ),
            KonaError::TenantFault { tenant, addr, len } => write!(
                f,
                "tenant {tenant} fault: {addr} len {len} is outside its address space"
            ),
            KonaError::RuntimeShutDown => f.write_str("runtime has been shut down"),
            KonaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl StdError for KonaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(KonaError::MemoryNodeFailed(3).is_transient());
        let fault = KonaError::VerbFault {
            node: 1,
            kind: VerbFaultKind::Dropped,
            executed: 2,
        };
        assert!(fault.is_transient());
        assert_eq!(fault.failed_node(), Some(1));
        assert!(!KonaError::UnknownMemoryNode(9).is_transient());
        assert!(!KonaError::InvalidConfig("x".into()).is_transient());
        assert_eq!(KonaError::UnknownMemoryNode(9).failed_node(), None);
        assert!(fault.to_string().contains("dropped"));
        assert!(fault.to_string().contains("node 1"));
    }

    #[test]
    fn display_messages() {
        let e = KonaError::Unmapped(VirtAddr::new(0x42));
        assert_eq!(e.to_string(), "no mapping for VirtAddr(0x42)");
        let e = KonaError::OutOfRemoteMemory {
            requested: 100,
            available: 10,
            occupancy: String::new(),
        };
        assert!(e.to_string().contains("100"));
        assert!(!e.to_string().contains('('), "no empty occupancy suffix");
        let e = KonaError::OutOfRemoteMemory {
            requested: 100,
            available: 10,
            occupancy: "node0 4/4MiB, node1 3/4MiB".into(),
        };
        assert!(e.to_string().contains("node0 4/4MiB"));
        let e = KonaError::ReplicationQuorumFailed {
            acked: 1,
            required: 3,
        };
        assert!(e.to_string().contains("1 of 3"));
    }

    #[test]
    fn fenced_epoch_is_permanent_and_displays_epochs() {
        let e = KonaError::FencedEpoch {
            node: 2,
            stale: 1,
            current: 3,
        };
        // Retrying a fenced write can never succeed: the epoch stays
        // stale. Re-sync, not retry, is the recovery path.
        assert!(!e.is_transient());
        assert_eq!(e.failed_node(), None);
        let msg = e.to_string();
        assert!(msg.contains("node 2"));
        assert!(msg.contains("stale epoch 1"));
        assert!(msg.contains("current epoch 3"));
    }

    #[test]
    fn tenant_errors_are_permanent_and_carry_context() {
        let e = KonaError::QuotaExceeded {
            tenant: 4,
            requested: 2 << 20,
            quota: 4 << 20,
            used: 3 << 20,
        };
        // Retrying an over-quota request cannot succeed: the tenant must
        // shrink its balloon (or be granted more quota) first.
        assert!(!e.is_transient());
        assert_eq!(e.failed_node(), None);
        let msg = e.to_string();
        assert!(msg.contains("tenant 4"));
        assert!(msg.contains(&format!("{}", 2 << 20)));
        assert!(msg.contains(&format!("{} of {} in use", 3 << 20, 4 << 20)));

        let e = KonaError::TenantFault {
            tenant: 7,
            addr: VirtAddr::new(0x1000),
            len: 64,
        };
        assert!(!e.is_transient());
        assert_eq!(e.failed_node(), None);
        let msg = e.to_string();
        assert!(msg.contains("tenant 7"));
        assert!(msg.contains("0x1000"));
        assert!(msg.contains("len 64"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<KonaError>();
    }
}
