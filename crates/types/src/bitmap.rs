//! Dirty cache-line bitmaps.
//!
//! The FPGA tracks which cache lines of each cached page have been written
//! back (and are therefore dirty) in a per-page bitmap. [`LineBitmap`] is
//! that structure: a compact bitset sized in cache lines, with the segment
//! iteration the eviction handler needs to aggregate contiguous dirty lines.

use std::fmt;

/// A bitset with one bit per cache line.
///
/// For a 4 KiB page this is 64 bits; the structure supports arbitrary sizes
/// so huge-page tracking (32768 lines) uses the same code.
///
/// # Examples
///
/// ```
/// # use kona_types::LineBitmap;
/// let mut bm = LineBitmap::new(64);
/// bm.set(3);
/// bm.set(4);
/// bm.set(10);
/// assert_eq!(bm.count_set(), 3);
/// assert_eq!(bm.segments().collect::<Vec<_>>(), vec![(3, 2), (10, 1)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LineBitmap {
    words: Vec<u64>,
    len: usize,
}

impl LineBitmap {
    /// Creates an all-clear bitmap covering `len` lines.
    pub fn new(len: usize) -> Self {
        LineBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of lines covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap covers zero lines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit for line `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize) {
        self.insert(idx);
    }

    /// Sets the bit for line `idx`, returning `true` if it was previously
    /// clear. Lets callers maintain incremental set-bit counts without a
    /// separate `get` probe.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "line index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx % 64);
        let word = &mut self.words[idx / 64];
        let newly_set = *word & mask == 0;
        *word |= mask;
        newly_set
    }

    /// Clears the bit for line `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn clear(&mut self, idx: usize) {
        assert!(idx < self.len, "line index {idx} out of range {}", self.len);
        self.words[idx / 64] &= !(1 << (idx % 64));
    }

    /// Tests the bit for line `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "line index {idx} out of range {}", self.len);
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        for i in 0..self.words.len() {
            self.words[i] = u64::MAX;
        }
        self.mask_tail();
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Returns `true` if every bit is set.
    pub fn all(&self) -> bool {
        self.count_set() == self.len
    }

    /// Iterates over the indices of set bits in ascending order.
    ///
    /// Scans word-at-a-time with `trailing_zeros`, so sparse bitmaps cost
    /// one probe per 64 lines instead of one per line.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cursor = 0usize;
        std::iter::from_fn(move || {
            let idx = self.next_set_bit(cursor)?;
            cursor = idx + 1;
            Some(idx)
        })
    }

    /// Index of the first set bit at or after `from`, scanning whole words.
    fn next_set_bit(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from / 64;
        // Bits beyond `len` in the last word are always clear (`insert`
        // bounds-checks and `set_all` masks the tail), so a raw word scan
        // never reports a phantom index.
        let mut word = self.words[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Index of the first clear bit at or after `from`, clamped to `len`.
    fn next_clear_bit(&self, from: usize) -> usize {
        if from >= self.len {
            return self.len;
        }
        let mut w = from / 64;
        let mut word = !self.words[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return (w * 64 + word.trailing_zeros() as usize).min(self.len);
            }
            w += 1;
            if w >= self.words.len() {
                return self.len;
            }
            word = !self.words[w];
        }
    }

    /// Iterates over maximal runs of set bits as `(start, run_length)` pairs.
    ///
    /// The eviction handler uses this to aggregate contiguous dirty cache
    /// lines into single log entries / RDMA writes.
    pub fn segments(&self) -> Segments<'_> {
        Segments {
            bitmap: self,
            cursor: 0,
        }
    }

    /// Merges another bitmap of the same length into this one (bitwise OR).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &LineBitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for LineBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineBitmap({}/{} set)", self.count_set(), self.len)
    }
}

/// Iterator over maximal set-bit runs; see [`LineBitmap::segments`].
#[derive(Debug)]
pub struct Segments<'a> {
    bitmap: &'a LineBitmap,
    cursor: usize,
}

impl Iterator for Segments<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        // Word-at-a-time: jump to the next set bit, then to the clear bit
        // ending its run, instead of probing line by line.
        let start = self.bitmap.next_set_bit(self.cursor)?;
        let end = self.bitmap.next_clear_bit(start);
        self.cursor = end;
        Some((start, end - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    #[test]
    fn set_get_clear() {
        let mut bm = LineBitmap::new(64);
        assert!(!bm.any());
        bm.set(0);
        bm.set(63);
        assert!(bm.get(0) && bm.get(63) && !bm.get(1));
        assert_eq!(bm.count_set(), 2);
        bm.clear(0);
        assert!(!bm.get(0));
        assert_eq!(bm.count_set(), 1);
    }

    #[test]
    fn non_word_sized() {
        let mut bm = LineBitmap::new(100);
        bm.set(99);
        assert!(bm.get(99));
        assert_eq!(bm.count_set(), 1);
        bm.set_all();
        assert_eq!(bm.count_set(), 100);
        assert!(bm.all());
        bm.clear_all();
        assert!(!bm.any());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        LineBitmap::new(64).get(64);
    }

    #[test]
    fn insert_reports_newly_set() {
        let mut bm = LineBitmap::new(64);
        assert!(bm.insert(7));
        assert!(!bm.insert(7));
        bm.clear(7);
        assert!(bm.insert(7));
    }

    #[test]
    fn word_scan_handles_boundaries() {
        // Runs spanning word boundaries and a tail word shorter than 64.
        let mut bm = LineBitmap::new(130);
        for i in 60..70 {
            bm.set(i);
        }
        bm.set(127);
        bm.set(128);
        bm.set(129);
        assert_eq!(
            bm.segments().collect::<Vec<_>>(),
            vec![(60, 10), (127, 3)]
        );
        assert_eq!(
            bm.iter_set().collect::<Vec<_>>(),
            (60..70).chain(127..130).collect::<Vec<_>>()
        );
    }

    #[test]
    fn segments_basic() {
        let mut bm = LineBitmap::new(64);
        for i in [0, 1, 2, 10, 20, 21] {
            bm.set(i);
        }
        let segs: Vec<_> = bm.segments().collect();
        assert_eq!(segs, vec![(0, 3), (10, 1), (20, 2)]);
    }

    #[test]
    fn segments_full_and_empty() {
        let mut bm = LineBitmap::new(64);
        assert_eq!(bm.segments().count(), 0);
        bm.set_all();
        assert_eq!(bm.segments().collect::<Vec<_>>(), vec![(0, 64)]);
    }

    #[test]
    fn union() {
        let mut a = LineBitmap::new(64);
        let mut b = LineBitmap::new(64);
        a.set(1);
        b.set(2);
        a.union_with(&b);
        assert!(a.get(1) && a.get(2));
    }

    #[test]
    fn iter_set_order() {
        let mut bm = LineBitmap::new(70);
        bm.set(69);
        bm.set(5);
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![5, 69]);
    }

    /// Segments partition exactly the set bits: total segment length
    /// equals the popcount, and every segment is a maximal run.
    #[test]
    fn prop_segments_cover_set_bits() {
        let mut rng = StdRng::seed_from_u64(0xB17A);
        for case in 0..64 {
            let len = rng.gen_range(1usize..300);
            let density = rng.gen_range(0.0..1.0);
            let mut bm = LineBitmap::new(len);
            for i in 0..len {
                if rng.gen_bool(density) {
                    bm.set(i);
                }
            }
            let segs: Vec<_> = bm.segments().collect();
            let total: usize = segs.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, bm.count_set(), "case {case}");
            for &(start, len) in &segs {
                for i in start..start + len {
                    assert!(bm.get(i));
                }
                if start > 0 {
                    assert!(!bm.get(start - 1));
                }
                if start + len < bm.len() {
                    assert!(!bm.get(start + len));
                }
            }
        }
    }

    /// set/clear round-trips and count_set matches a naive model.
    #[test]
    fn prop_count_matches_model() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for case in 0..64 {
            let mut bm = LineBitmap::new(128);
            let mut model = [false; 128];
            for _ in 0..rng.gen_range(0usize..200) {
                let idx = rng.gen_range(0usize..128);
                let set: bool = rng.gen();
                if set {
                    bm.set(idx);
                    model[idx] = true;
                } else {
                    bm.clear(idx);
                    model[idx] = false;
                }
            }
            assert_eq!(
                bm.count_set(),
                model.iter().filter(|&&b| b).count(),
                "case {case}"
            );
            for (i, &expected) in model.iter().enumerate() {
                assert_eq!(bm.get(i), expected);
            }
        }
    }
}
