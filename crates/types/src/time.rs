//! Simulated time.
//!
//! All Kona simulators charge costs in nanoseconds of *simulated* time so
//! experiments are deterministic and independent of host machine speed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span (or instant) of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// # use kona_types::Nanos;
/// let t = Nanos::micros(3) + Nanos::from_ns(500);
/// assert_eq!(t.as_ns(), 3_500);
/// assert_eq!(t.to_string(), "3.500us");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero time.
    pub const ZERO: Nanos = Nanos(0);

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Constructs from microseconds.
    pub const fn micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// The value in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The value in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Constructs from a fractional nanosecond count, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid nanosecond value");
        Nanos(ns.round() as u64)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

/// A monotonically advancing simulated clock.
///
/// # Examples
///
/// ```
/// # use kona_types::{Nanos, SimClock};
/// let mut clock = SimClock::new();
/// clock.advance(Nanos::micros(3));
/// assert_eq!(clock.now(), Nanos::micros(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Nanos,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `delta`.
    pub fn advance(&mut self, delta: Nanos) {
        self.now += delta;
    }

    /// Advances the clock to `instant` if it is in the future; a clock never
    /// moves backwards.
    pub fn advance_to(&mut self, instant: Nanos) {
        if instant > self.now {
            self.now = instant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Nanos::micros(1).as_ns(), 1_000);
        assert_eq!(Nanos::millis(1).as_ns(), 1_000_000);
        assert_eq!(Nanos::secs(1).as_ns(), 1_000_000_000);
        assert_eq!(Nanos::from_ns_f64(2.6).as_ns(), 3);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_ns(100);
        let b = Nanos::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!((a * 3).as_ns(), 300);
        assert_eq!((a / 2).as_ns(), 50);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        let total: Nanos = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_ns(), 180);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Nanos::from_ns(5).to_string(), "5ns");
        assert_eq!(Nanos::micros(2).to_string(), "2.000us");
        assert_eq!(Nanos::millis(2).to_string(), "2.000ms");
        assert_eq!(Nanos::secs(2).to_string(), "2.000s");
    }

    #[test]
    fn clock_monotonic() {
        let mut c = SimClock::new();
        c.advance(Nanos::from_ns(10));
        c.advance_to(Nanos::from_ns(5)); // no-op: in the past
        assert_eq!(c.now().as_ns(), 10);
        c.advance_to(Nanos::from_ns(50));
        assert_eq!(c.now().as_ns(), 50);
    }

    #[test]
    #[should_panic]
    fn from_ns_f64_rejects_negative() {
        Nanos::from_ns_f64(-1.0);
    }
}
