//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! The default `SipHash` behind [`std::collections::HashMap`] is keyed and
//! DoS-resistant, which the simulator's internal maps (coherence directory
//! and agent line maps, dirty-bitmap page maps, eviction logs) do not need:
//! their keys are line/page numbers derived from the workload, not
//! attacker-controlled input. This module provides an `FxHasher`-style
//! multiply-rotate hasher (the scheme used by the Rust compiler's internal
//! tables) and map/set aliases built on it. On `u64` keys a hash costs one
//! multiply and one rotate instead of SipHash's full permutation rounds.
//!
//! # Examples
//!
//! ```
//! use kona_types::{FxHashMap, FxHashSet};
//!
//! let mut lines: FxHashMap<u64, u32> = FxHashMap::default();
//! lines.insert(42, 7);
//! assert_eq!(lines[&42], 7);
//! let mut set: FxHashSet<u64> = FxHashSet::default();
//! assert!(set.insert(42));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier: a 64-bit constant with good bit-diffusion properties
/// (derived from the golden ratio, as in FxHash / FNV-style mixers).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast multiply-rotate hasher for simulator-internal keys.
///
/// Not cryptographically secure and not DoS-resistant — use only for maps
/// whose keys the simulator itself generates.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" hash differently.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — for hot-path simulator maps keyed by
/// line/page numbers.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_u64(0xDEAD_BEEF), hash_u64(0xDEAD_BEEF));
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance proof, just a sanity sweep over the
        // small sequential keys the simulator actually uses.
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            assert!(seen.insert(hash_u64(k)), "collision at {k}");
        }
    }

    #[test]
    fn bytes_and_length_sensitive() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgi"));
        assert_eq!(h(b"abcdefghij"), h(b"abcdefghij"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
