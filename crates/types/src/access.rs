//! Memory access events.

use crate::addr::VirtAddr;
use std::fmt;

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Returns `true` for [`AccessKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// A single application memory access: address, length in bytes, and kind.
///
/// This is the unit that workload generators emit and that every simulator
/// in the workspace consumes.
///
/// # Examples
///
/// ```
/// # use kona_types::{MemAccess, AccessKind, VirtAddr};
/// let a = MemAccess::write(VirtAddr::new(0x100), 8);
/// assert!(a.kind.is_write());
/// assert_eq!(a.end(), VirtAddr::new(0x108));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// First byte touched.
    pub addr: VirtAddr,
    /// Number of bytes touched (at least 1).
    pub len: u32,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Creates an access event.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero — a zero-length access is meaningless and
    /// almost always a bug in a workload generator.
    pub fn new(addr: VirtAddr, len: u32, kind: AccessKind) -> Self {
        assert!(len > 0, "memory access length must be non-zero");
        MemAccess { addr, len, kind }
    }

    /// Convenience constructor for a read.
    pub fn read(addr: VirtAddr, len: u32) -> Self {
        Self::new(addr, len, AccessKind::Read)
    }

    /// Convenience constructor for a write.
    pub fn write(addr: VirtAddr, len: u32) -> Self {
        Self::new(addr, len, AccessKind::Write)
    }

    /// One past the last byte touched.
    pub fn end(self) -> VirtAddr {
        self.addr + u64::from(self.len)
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}+{}", self.kind, self.addr.raw(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
        assert!(AccessKind::Read.is_read());
        assert_eq!(AccessKind::Read.to_string(), "R");
    }

    #[test]
    fn constructors_and_end() {
        let r = MemAccess::read(VirtAddr::new(10), 4);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.end().raw(), 14);
        let w = MemAccess::write(VirtAddr::new(0), 1);
        assert_eq!(w.end().raw(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_length_rejected() {
        MemAccess::read(VirtAddr::new(0), 0);
    }

    #[test]
    fn display() {
        assert_eq!(
            MemAccess::write(VirtAddr::new(0x40), 8).to_string(),
            "W 0x40+8"
        );
    }
}
