//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds with no external dependencies, so instead of the
//! `rand` crate the workload generators and randomized tests use this
//! in-repo xoshiro256++ generator (Blackman & Vigna), seeded through
//! SplitMix64 exactly as `rand`'s `StdRng::seed_from_u64` recommends.
//! The API mirrors the subset of `rand` the workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`] and [`StdRng::seed_from_u64`].
//!
//! # Examples
//!
//! ```
//! use kona_types::rng::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(10u64..20);
//! assert!((10..20).contains(&k));
//! ```

/// The subset of `rand::Rng` used across the workspace.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Sample`] for the mapping).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value from a `a..b` or `a..=b` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Types drawable uniformly from an [`Rng`].
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u8 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, the standard mapping.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: Rng>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler over a half-open span.
pub trait SampleUniform: Sized + Copy {
    /// Draws uniformly from `[start, end)`, or `[start, end]` when
    /// `inclusive`.
    fn sample_span<R: Rng>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_one<R: Rng>(self, rng: &mut R) -> T {
        T::sample_span(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_one<R: Rng>(self, rng: &mut R) -> T {
        T::sample_span(rng, *self.start(), *self.end(), true)
    }
}

/// Draws a `u64` in `[0, n)` without modulo bias (rejection sampling over
/// the smallest covering power of two).
fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let mask = n.next_power_of_two().wrapping_sub(1);
    loop {
        let v = rng.next_u64() & mask;
        if v < n {
            return v;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: Rng>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self {
                let span = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(u64::from(inclusive));
                assert!(span > 0, "empty range");
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u64, u32, u16, u8, usize, i64, i32);

impl SampleUniform for f64 {
    fn sample_span<R: Rng>(rng: &mut R, start: Self, end: Self, _inclusive: bool) -> Self {
        assert!(start < end, "empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// A seedable xoshiro256++ generator (the workspace's `StdRng`).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full 256-bit state from `seed` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..12);
            assert!((5..12).contains(&v));
            seen_low |= v == 5;
            seen_high |= v == 11;
        }
        assert!(seen_low && seen_high, "both endpoints should occur");
        let f = rng.gen_range(1.0..2.0);
        assert!((1.0..2.0).contains(&f));
    }

    #[test]
    fn power_of_two_and_odd_spans() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        // Roughly uniform: each bin within 3 sigma of 10_000.
        for c in counts {
            assert!((9_000..11_000).contains(&c), "biased bin: {c}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        rng.gen_range(5u32..5);
    }
}
