//! Geometry constants and alignment helpers.

use crate::addr::VirtAddr;
use std::fmt;

/// Size of a CPU cache line in bytes (64 B on all x86-64 parts the paper
/// evaluates on).
pub const CACHE_LINE_SIZE: u64 = 64;

/// Size of a base page in bytes (4 KiB).
pub const PAGE_SIZE_4K: u64 = 4096;

/// Size of a huge page in bytes (2 MiB).
pub const PAGE_SIZE_2M: u64 = 2 * 1024 * 1024;

/// Number of cache lines in a 4 KiB page (64).
pub const LINES_PER_PAGE_4K: usize = (PAGE_SIZE_4K / CACHE_LINE_SIZE) as usize;

/// Rounds `value` down to the nearest multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is not a power of two.
///
/// # Examples
///
/// ```
/// # use kona_types::align_down;
/// assert_eq!(align_down(4097, 4096), 4096);
/// assert_eq!(align_down(4096, 4096), 4096);
/// ```
#[inline]
pub fn align_down(value: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    value & !(align - 1)
}

/// Rounds `value` up to the nearest multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is not a power of two, or if rounding up overflows.
///
/// # Examples
///
/// ```
/// # use kona_types::align_up;
/// assert_eq!(align_up(4097, 4096), 8192);
/// assert_eq!(align_up(4096, 4096), 4096);
/// ```
#[inline]
pub fn align_up(value: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    value
        .checked_add(align - 1)
        .expect("align_up overflow")
        & !(align - 1)
}

/// Returns `true` if `value` is a multiple of `align` (power of two).
#[inline]
pub fn is_aligned(value: u64, align: u64) -> bool {
    align_down(value, align) == value
}

/// A byte count with a human-readable `Display` (`4.0 KiB`, `1.5 GiB`, ...).
///
/// # Examples
///
/// ```
/// # use kona_types::ByteSize;
/// assert_eq!(ByteSize(4096).to_string(), "4.0 KiB");
/// assert_eq!(ByteSize::gib(4).0, 4 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Constructs a size of `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n << 10)
    }

    /// Constructs a size of `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n << 20)
    }

    /// Constructs a size of `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n << 30)
    }

    /// The raw number of bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, u64); 4] = [
            ("GiB", 1 << 30),
            ("MiB", 1 << 20),
            ("KiB", 1 << 10),
            ("B", 1),
        ];
        for (name, scale) in UNITS {
            if self.0 >= scale {
                return write!(f, "{:.1} {}", self.0 as f64 / scale as f64, name);
            }
        }
        write!(f, "0 B")
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

/// Describes a page size and derived cache-line geometry.
///
/// Kona decouples *tracking* granularity (cache lines) from *translation*
/// granularity (pages); analysis code is generic over the page size via this
/// type so the same pipeline measures 4 KiB, 2 MiB and cache-line tracking.
///
/// # Examples
///
/// ```
/// # use kona_types::{PageGeometry, VirtAddr};
/// let geo = PageGeometry::huge();
/// assert_eq!(geo.page_size(), 2 * 1024 * 1024);
/// assert_eq!(geo.lines_per_page(), 32768);
/// let a = VirtAddr::new(0x2040);
/// assert_eq!(geo.page_of(a).number(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageGeometry {
    page_size: u64,
}

impl PageGeometry {
    /// Geometry for 4 KiB base pages.
    pub const fn base() -> Self {
        PageGeometry {
            page_size: PAGE_SIZE_4K,
        }
    }

    /// Geometry for 2 MiB huge pages.
    pub const fn huge() -> Self {
        PageGeometry {
            page_size: PAGE_SIZE_2M,
        }
    }

    /// Geometry for an arbitrary power-of-two page size that is a multiple
    /// of the cache-line size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two or is smaller than a
    /// cache line.
    pub fn with_page_size(page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two() && page_size >= CACHE_LINE_SIZE,
            "page size must be a power of two and at least one cache line"
        );
        PageGeometry { page_size }
    }

    /// The page size in bytes.
    pub const fn page_size(self) -> u64 {
        self.page_size
    }

    /// Number of cache lines per page.
    pub const fn lines_per_page(self) -> usize {
        (self.page_size / CACHE_LINE_SIZE) as usize
    }

    /// The page containing `addr`.
    pub fn page_of(self, addr: VirtAddr) -> Page {
        Page {
            number: addr.raw() / self.page_size,
            geometry: self,
        }
    }

    /// Index of the cache line containing `addr` within its page.
    pub fn line_index_in_page(self, addr: VirtAddr) -> usize {
        ((addr.raw() % self.page_size) / CACHE_LINE_SIZE) as usize
    }

    /// Splits the byte range `[addr, addr + len)` into `(page_number,
    /// line_index)` pairs, one per touched cache line.
    ///
    /// This is the canonical way analysis code decomposes an access event
    /// into tracked cache lines.
    pub fn lines_in_range(self, addr: VirtAddr, len: u64) -> LinesInRange {
        let start = align_down(addr.raw(), CACHE_LINE_SIZE);
        let end = align_up(addr.raw().saturating_add(len.max(1)), CACHE_LINE_SIZE);
        LinesInRange {
            geometry: self,
            cursor: start,
            end,
        }
    }
}

impl Default for PageGeometry {
    fn default() -> Self {
        PageGeometry::base()
    }
}

/// A page identified by number under a particular [`PageGeometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Page {
    number: u64,
    geometry: PageGeometry,
}

impl Page {
    /// The page number (address divided by page size).
    pub fn number(self) -> u64 {
        self.number
    }

    /// The first address of the page.
    pub fn start(self) -> VirtAddr {
        VirtAddr::new(self.number * self.geometry.page_size())
    }

    /// The geometry this page was derived under.
    pub fn geometry(self) -> PageGeometry {
        self.geometry
    }
}

/// Iterator over `(page_number, line_index)` pairs produced by
/// [`PageGeometry::lines_in_range`].
#[derive(Debug, Clone)]
pub struct LinesInRange {
    geometry: PageGeometry,
    cursor: u64,
    end: u64,
}

impl Iterator for LinesInRange {
    type Item = (u64, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.end {
            return None;
        }
        let addr = VirtAddr::new(self.cursor);
        let page = self.geometry.page_of(addr).number();
        let line = self.geometry.line_index_in_page(addr);
        self.cursor += CACHE_LINE_SIZE;
        Some((page, line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_helpers() {
        assert_eq!(align_down(0, 64), 0);
        assert_eq!(align_down(63, 64), 0);
        assert_eq!(align_down(64, 64), 64);
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert!(is_aligned(128, 64));
        assert!(!is_aligned(100, 64));
    }

    #[test]
    #[should_panic]
    fn align_requires_power_of_two() {
        align_down(10, 3);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize(0).to_string(), "0 B");
        assert_eq!(ByteSize(512).to_string(), "512.0 B");
        assert_eq!(ByteSize::kib(4).to_string(), "4.0 KiB");
        assert_eq!(ByteSize::mib(2).to_string(), "2.0 MiB");
        assert_eq!(ByteSize::gib(1).to_string(), "1.0 GiB");
        assert_eq!(ByteSize(1536).to_string(), "1.5 KiB");
    }

    #[test]
    fn geometry_base_and_huge() {
        assert_eq!(PageGeometry::base().lines_per_page(), 64);
        assert_eq!(PageGeometry::huge().lines_per_page(), 32768);
    }

    #[test]
    fn page_of_and_line_index() {
        let geo = PageGeometry::base();
        let a = VirtAddr::new(PAGE_SIZE_4K * 3 + 130);
        let p = geo.page_of(a);
        assert_eq!(p.number(), 3);
        assert_eq!(p.start(), VirtAddr::new(PAGE_SIZE_4K * 3));
        assert_eq!(geo.line_index_in_page(a), 2);
    }

    #[test]
    fn lines_in_range_single_byte() {
        let geo = PageGeometry::base();
        let lines: Vec<_> = geo.lines_in_range(VirtAddr::new(100), 1).collect();
        assert_eq!(lines, vec![(0, 1)]);
    }

    #[test]
    fn lines_in_range_straddles_lines_and_pages() {
        let geo = PageGeometry::base();
        // 8 bytes straddling a line boundary.
        let lines: Vec<_> = geo.lines_in_range(VirtAddr::new(60), 8).collect();
        assert_eq!(lines, vec![(0, 0), (0, 1)]);
        // Straddling a page boundary.
        let lines: Vec<_> = geo
            .lines_in_range(VirtAddr::new(PAGE_SIZE_4K - 32), 64)
            .collect();
        assert_eq!(lines, vec![(0, 63), (1, 0)]);
    }

    #[test]
    fn lines_in_range_zero_len_counts_one_line() {
        let geo = PageGeometry::base();
        let lines: Vec<_> = geo.lines_in_range(VirtAddr::new(0), 0).collect();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn custom_geometry() {
        let geo = PageGeometry::with_page_size(1024);
        assert_eq!(geo.lines_per_page(), 16);
        assert_eq!(geo.page_of(VirtAddr::new(1025)).number(), 1);
    }

    #[test]
    #[should_panic]
    fn custom_geometry_rejects_sub_line() {
        PageGeometry::with_page_size(32);
    }
}
