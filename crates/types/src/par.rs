//! A zero-dependency parallel execution layer for experiment fan-out.
//!
//! Every figure of the paper is reproduced by driving the same
//! deterministic simulator over many independent parameter points. This
//! module provides [`par_map`]: a scoped-thread ordered fan-out that runs
//! each point on a worker thread and returns results **in input order**, so
//! a parallel sweep's output is byte-identical to the sequential run. The
//! worker count comes from a [`Jobs`] knob (`--jobs N` on the experiment
//! binaries, defaulting to [`std::thread::available_parallelism`]).
//!
//! Workers pull tasks from a shared queue, so uneven point costs balance
//! automatically. Panics in workers propagate to the caller when the scope
//! joins, exactly like a sequential panic would.
//!
//! # Examples
//!
//! ```
//! use kona_types::par::{par_map, Jobs};
//!
//! let squares = par_map(Jobs::new(4), vec![1u64, 2, 3, 4], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! assert_eq!(
//!     par_map(Jobs::serial(), vec![1u64, 2, 3, 4], |_, x| x * x),
//!     squares,
//! );
//! ```

use std::sync::Mutex;

/// The worker-count knob for [`par_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// Exactly `n` workers (0 is clamped to 1).
    pub fn new(n: usize) -> Self {
        Jobs(n.max(1))
    }

    /// One worker: run inline on the calling thread.
    pub fn serial() -> Self {
        Jobs(1)
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        Jobs::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Parses a `--jobs N` flag from pre-split argument strings; absent or
    /// malformed flags fall back to [`Jobs::available`]. `--jobs 1` forces
    /// the sequential path.
    pub fn from_args(args: &[String]) -> Self {
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .map_or_else(Jobs::available, Jobs::new)
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }

    /// Whether this runs on the calling thread only.
    pub fn is_serial(self) -> bool {
        self.0 == 1
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::available()
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in input order.
///
/// `f` receives `(index, item)` so workers can label or seed work by
/// position. With `jobs == 1` (or a single item) the closure runs inline on
/// the calling thread — no threads are spawned and no locking happens, so
/// the sequential path has zero overhead and identical observable behavior.
///
/// Determinism contract: for a pure `f`, the result vector is identical for
/// every worker count. The scheduling order across workers is not
/// deterministic; only the output order is.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn par_map<T, R, F>(jobs: Jobs, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.get().min(n.max(1));
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Reversed so `pop()` hands out items in input order (first-come
    // scheduling; output order is restored by the index sort below).
    let queue: Mutex<Vec<(usize, T)>> =
        Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let next = queue.lock().expect("queue poisoned").pop();
                    let Some((i, item)) = next else { break };
                    let r = f(i, item);
                    results.lock().expect("results poisoned").push((i, r));
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the caller
        // intact (the scope's implicit join would replace it with a
        // generic "a scoped thread panicked").
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut out = results.into_inner().expect("results poisoned");
    out.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(out.len(), n);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = par_map(Jobs::new(jobs), items.clone(), |_, x| x * 3 + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn index_matches_position() {
        let got = par_map(Jobs::new(4), vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(par_map(Jobs::new(8), empty, |_, x: u64| x).is_empty());
        assert_eq!(par_map(Jobs::new(8), vec![7u64], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still come back in order.
        let got = par_map(Jobs::new(4), vec![30_000u64, 1, 20_000, 2], |_, n| {
            (0..n).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        let want: Vec<u64> = vec![30_000u64, 1, 20_000, 2]
            .into_iter()
            .map(|n| (0..n).fold(0u64, |a, b| a.wrapping_add(b * b)))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panic_propagates() {
        par_map(Jobs::new(2), vec![0u32, 1], |_, x| {
            if x == 1 {
                panic!("worker exploded");
            }
            x
        });
    }

    #[test]
    fn jobs_parsing() {
        let args = |s: &[&str]| s.iter().map(ToString::to_string).collect::<Vec<_>>();
        assert_eq!(Jobs::from_args(&args(&["--jobs", "3"])).get(), 3);
        assert_eq!(Jobs::from_args(&args(&["--jobs", "0"])).get(), 1);
        assert!(Jobs::from_args(&args(&["--quick"])).get() >= 1);
        assert!(Jobs::from_args(&args(&["--jobs", "x"])).get() >= 1);
        assert!(Jobs::serial().is_serial());
        assert_eq!(Jobs::new(0).get(), 1);
        assert_eq!(format!("{}", Jobs::new(5)), "5");
    }
}
