//! Shard decomposition for single-run parallelism.
//!
//! PR 2's [`par_map`](crate::par_map) parallelizes *across* experiment
//! points; one big simulation still runs on a single core. This module
//! provides the vocabulary for splitting a single run: a [`ShardPlan`]
//! deterministically partitions the page space into a **fixed number of
//! logical shards**, and a [`Shards`] knob (`--shards N`) chooses how many
//! worker threads execute those logical shards.
//!
//! The two numbers are deliberately decoupled. The logical decomposition
//! is part of the *model* — it decides which pages share an eviction
//! handler, a coherence-directory partition, an FMem slice and an RNG
//! stream — so it must not change with the machine. The worker count is
//! pure *execution width*: logical shards are independent, so running
//! them on 1 thread or 8 produces the same per-shard histories, and an
//! input-order merge makes the combined output byte-identical at every
//! `--shards` value.
//!
//! Cross-shard result streams (shipment journals, trace spans) are
//! recombined by [`sequence_streams`]: a stable k-way merge by simulated
//! time with ties broken by shard id, so the merged history is a total
//! order that does not depend on scheduling.
//!
//! # Examples
//!
//! ```
//! use kona_types::{sequence_streams, Nanos, ShardPlan};
//!
//! let plan = ShardPlan::new(4);
//! assert_eq!(plan.shard_of_page(9), 1);
//! assert_eq!(plan.local_index(9), 2); // third page owned by shard 1
//!
//! let merged = sequence_streams(vec![
//!     vec![(Nanos::from_ns(5), "a1"), (Nanos::from_ns(9), "a2")],
//!     vec![(Nanos::from_ns(5), "b1")],
//! ]);
//! // Equal times break ties by shard id; within-shard order is kept.
//! assert_eq!(merged, vec![
//!     (Nanos::from_ns(5), 0, "a1"),
//!     (Nanos::from_ns(5), 1, "b1"),
//!     (Nanos::from_ns(9), 0, "a2"),
//! ]);
//! ```

use crate::time::Nanos;

/// Default logical shard count used by the sharded engine when the caller
/// does not pick one. Eight keeps per-shard cache slices comfortably
/// above one FMem set for the stock configs while leaving headroom for
/// an 8-thread `--shards` run to win.
pub const DEFAULT_LOGICAL_SHARDS: u32 = 8;

/// Derives a per-shard seed from a base seed: splitmix64 of the base
/// xored with the shard id, so shard streams are decorrelated but fully
/// determined by `(base, shard)` — independent of worker count.
pub fn derive_shard_seed(base: u64, shard: u32) -> u64 {
    let mut z = base ^ (u64::from(shard) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fixed logical partitioning of the page space.
///
/// Pages are striped round-robin: page `p` belongs to shard
/// `p % logical`, and is the `p / logical`-th page owned by that shard.
/// Striping (rather than contiguous ranges) balances any workload whose
/// footprint is smaller than the allocation, and makes the owner of a
/// page computable without a map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    logical: u32,
}

impl ShardPlan {
    /// A plan with `logical` shards (0 is clamped to 1).
    pub fn new(logical: u32) -> Self {
        ShardPlan {
            logical: logical.max(1),
        }
    }

    /// The number of logical shards.
    pub fn logical(self) -> u32 {
        self.logical
    }

    /// The shard that owns `page`.
    pub fn shard_of_page(self, page: u64) -> u32 {
        (page % u64::from(self.logical)) as u32
    }

    /// The position of `page` within its owner's page space.
    pub fn local_index(self, page: u64) -> u64 {
        page / u64::from(self.logical)
    }

    /// How many of the first `total_pages` pages shard `shard` owns.
    pub fn pages_owned(self, shard: u32, total_pages: u64) -> u64 {
        let logical = u64::from(self.logical);
        let base = total_pages / logical;
        let rem = total_pages % logical;
        base + u64::from(u64::from(shard) < rem)
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan::new(DEFAULT_LOGICAL_SHARDS)
    }
}

impl std::fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} logical shards (page % {})", self.logical, self.logical)
    }
}

/// The worker-thread knob for sharded execution (`--shards N`).
///
/// Unlike [`Jobs`](crate::Jobs) this defaults to 1: sharded execution is
/// opt-in per run, and `--shards 1` must reproduce the engine's output
/// exactly (it runs the same logical shards sequentially).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shards(usize);

impl Shards {
    /// Exactly `n` worker threads (0 is clamped to 1).
    pub fn new(n: usize) -> Self {
        Shards(n.max(1))
    }

    /// One worker: logical shards run sequentially on the calling thread.
    pub fn serial() -> Self {
        Shards(1)
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        Shards::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Parses a `--shards N` flag from pre-split argument strings; absent
    /// or malformed flags fall back to [`Shards::serial`].
    pub fn from_args(args: &[String]) -> Self {
        args.iter()
            .position(|a| a == "--shards")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .map_or_else(Shards::serial, Shards::new)
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }

    /// Whether shards run sequentially on the calling thread.
    pub fn is_serial(self) -> bool {
        self.0 == 1
    }
}

impl Default for Shards {
    fn default() -> Self {
        Shards::serial()
    }
}

impl std::fmt::Display for Shards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministically sequences per-shard `(time, item)` streams into one
/// total order: ascending simulated time, ties broken by shard id, and
/// within one shard the original stream order is preserved (streams are
/// produced by a single simulated clock, so they are nondecreasing; the
/// merge is stable either way).
///
/// This is the cross-shard sequencing layer: shipment journals, trace
/// spans and cluster ticks from independent shards recombine through it,
/// so the merged history never depends on which worker thread finished
/// first.
pub fn sequence_streams<T>(streams: Vec<Vec<(Nanos, T)>>) -> Vec<(Nanos, u32, T)> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut tagged: Vec<(Nanos, u32, usize, T)> = Vec::with_capacity(total);
    for (shard, stream) in streams.into_iter().enumerate() {
        for (pos, (at, item)) in stream.into_iter().enumerate() {
            tagged.push((at, shard as u32, pos, item));
        }
    }
    // Sort key (time, shard, position-within-shard) is unique per item,
    // so the order is total and independent of the input's interleaving.
    tagged.sort_by_key(|&(at, shard, pos, _)| (at, shard, pos));
    tagged
        .into_iter()
        .map(|(at, shard, _, item)| (at, shard, item))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stripes_pages() {
        let plan = ShardPlan::new(4);
        assert_eq!(plan.logical(), 4);
        for page in 0..32u64 {
            assert_eq!(u64::from(plan.shard_of_page(page)), page % 4);
            assert_eq!(plan.local_index(page), page / 4);
        }
        // 10 pages over 4 shards: shards 0 and 1 own 3, shards 2 and 3 own 2.
        assert_eq!(plan.pages_owned(0, 10), 3);
        assert_eq!(plan.pages_owned(1, 10), 3);
        assert_eq!(plan.pages_owned(2, 10), 2);
        assert_eq!(plan.pages_owned(3, 10), 2);
        let total: u64 = (0..4).map(|s| plan.pages_owned(s, 10)).sum();
        assert_eq!(total, 10);
        assert_eq!(ShardPlan::new(0).logical(), 1);
        assert_eq!(ShardPlan::default().logical(), DEFAULT_LOGICAL_SHARDS);
        assert!(format!("{}", ShardPlan::new(4)).contains("4 logical"));
    }

    #[test]
    fn shards_knob_parses() {
        let args = |s: &[&str]| s.iter().map(ToString::to_string).collect::<Vec<_>>();
        assert_eq!(Shards::from_args(&args(&["--shards", "8"])).get(), 8);
        assert_eq!(Shards::from_args(&args(&["--shards", "0"])).get(), 1);
        assert_eq!(Shards::from_args(&args(&["--quick"])).get(), 1);
        assert_eq!(Shards::from_args(&args(&["--shards", "x"])).get(), 1);
        assert!(Shards::serial().is_serial());
        assert!(Shards::default().is_serial());
        assert!(Shards::available().get() >= 1);
        assert_eq!(format!("{}", Shards::new(5)), "5");
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let a = derive_shard_seed(42, 0);
        let b = derive_shard_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_shard_seed(42, 0), "derivation is pure");
        assert_ne!(derive_shard_seed(43, 0), a, "base seed steers streams");
    }

    #[test]
    fn sequencing_orders_by_time_then_shard() {
        let merged = sequence_streams(vec![
            vec![(Nanos::from_ns(10), 'a'), (Nanos::from_ns(30), 'b')],
            vec![(Nanos::from_ns(10), 'c'), (Nanos::from_ns(20), 'd')],
            vec![],
        ]);
        assert_eq!(
            merged,
            vec![
                (Nanos::from_ns(10), 0, 'a'),
                (Nanos::from_ns(10), 1, 'c'),
                (Nanos::from_ns(20), 1, 'd'),
                (Nanos::from_ns(30), 0, 'b'),
            ]
        );
    }

    #[test]
    fn sequencing_empty_is_empty() {
        let merged: Vec<(Nanos, u32, u8)> = sequence_streams(vec![]);
        assert!(merged.is_empty());
    }
}
