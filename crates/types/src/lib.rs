//! Common vocabulary types for the Kona disaggregated-memory runtime.
//!
//! This crate defines the types shared by every other crate in the Kona
//! workspace: strongly-typed addresses ([`VirtAddr`], [`VfMemAddr`],
//! [`RemoteAddr`]), geometry constants and helpers ([`CACHE_LINE_SIZE`],
//! [`PAGE_SIZE_4K`], [`PageGeometry`]), memory access events
//! ([`MemAccess`], [`AccessKind`]), simulated time ([`Nanos`], [`SimClock`]),
//! per-page dirty cache-line bitmaps ([`LineBitmap`]) and the shared error
//! type ([`KonaError`]).
//!
//! # Examples
//!
//! ```
//! use kona_types::{VirtAddr, PageGeometry, CACHE_LINE_SIZE};
//!
//! let geo = PageGeometry::base();
//! let addr = VirtAddr::new(0x1000_0042);
//! assert_eq!(geo.page_of(addr).start(), VirtAddr::new(0x1000_0000));
//! assert_eq!(geo.line_index_in_page(addr), 0x42 / CACHE_LINE_SIZE as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod bitmap;
mod error;
mod fx;
pub mod par;
pub mod rng;
pub mod shard;
mod size;
mod slab_lru;
mod time;

pub use access::{AccessKind, MemAccess};
pub use addr::{LineIndex, PageNumber, RemoteAddr, VfMemAddr, VirtAddr};
pub use bitmap::LineBitmap;
pub use error::{KonaError, Result, VerbFaultKind};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use par::{par_map, Jobs};
pub use shard::{derive_shard_seed, sequence_streams, ShardPlan, Shards, DEFAULT_LOGICAL_SHARDS};
pub use slab_lru::SlabLru;
pub use size::{
    align_down, align_up, is_aligned, ByteSize, Page, PageGeometry, CACHE_LINE_SIZE,
    LINES_PER_PAGE_4K, PAGE_SIZE_2M, PAGE_SIZE_4K,
};
pub use time::{Nanos, SimClock};
