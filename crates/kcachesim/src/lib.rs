//! KCacheSim: the average-memory-access-time simulator (§5, §6.2).
//!
//! "KCacheSim uses an existing cache simulator (Cachegrind) to determine
//! the cache miss rates for each application from each level of the cache.
//! Based on the cache miss rates, KCacheSim computes the AMAT. For Kona,
//! we model the DRAM cache (FMem) as another level in the cache hierarchy,
//! with a 4KB block size. For the baselines, we use main memory (CMem)
//! instead of FMem."
//!
//! Our Cachegrind stand-in is `kona-cache-sim`; this crate adds the
//! per-system latency models ([`SystemModel`]) and the sweeps behind the
//! paper's Fig 8 panels ([`sweep_cache_size`], [`sweep_block_size`],
//! [`sweep_associativity`]).
//!
//! Remote latencies come from the paper's measurements: Kona at the raw
//! 3 µs RDMA page fetch (no page fault), LegoOS at 10 µs and Infiniswap at
//! 40 µs (fault + software stack included). `Kona-main` is the hypothetical
//! variant caching in CMem rather than FMem (no NUMA penalty).
//!
//! # Examples
//!
//! ```
//! use kona_kcachesim::{simulate, SystemModel};
//! use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};
//!
//! let profile = WorkloadProfile::default().with_windows(1).with_ops_per_window(500);
//! let trace = RedisWorkload::rand().with_profile(profile).generate(1);
//! let result = simulate(&trace, &SystemModel::kona(), 0.5, 4096, 4);
//! assert!(result.amat_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod sweep;

pub use model::{simulate, simulate_sharded, AmatResult, SystemModel};
pub use sweep::{
    sweep_associativity, sweep_associativity_jobs, sweep_block_size, sweep_block_size_jobs,
    sweep_cache_size, sweep_cache_size_jobs, SweepPoint,
};
