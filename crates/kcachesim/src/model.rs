//! Per-system AMAT models.

use kona_cache_sim::{CacheConfig, CacheHierarchy, HierarchyConfig};
use kona_trace::{Trace, TraceEvent};
use kona_types::{par_map, Jobs, Nanos, ShardPlan, Shards};

/// Latency model of one remote-memory system.
///
/// All systems share the Skylake L1/L2/LLC levels; they differ in the
/// DRAM-cache latency (FMem vs CMem) and the remote-access latency
/// (with or without the page-fault software stack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemModel {
    name: &'static str,
    /// Latencies of L1 / L2 / LLC hits.
    cache_latencies: [Nanos; 3],
    /// Latency of a DRAM-cache (4th level) hit.
    dram_latency: Nanos,
    /// Latency of an access that misses everything and goes remote.
    remote_latency: Nanos,
}

impl SystemModel {
    /// Kona: DRAM cache in FMem (NUMA-like penalty), remote access at raw
    /// RDMA cost — no page fault.
    pub fn kona() -> Self {
        SystemModel {
            name: "Kona",
            cache_latencies: [Nanos::from_ns(2), Nanos::from_ns(6), Nanos::from_ns(20)],
            dram_latency: Nanos::from_ns(150),
            remote_latency: Nanos::micros(3),
        }
    }

    /// Kona-main: "a version of Kona where the data is cached in CMem,
    /// thus avoiding the NUMA overheads ... the best performance that Kona
    /// can achieve if it could track CMem" (§6.2).
    pub fn kona_main() -> Self {
        SystemModel {
            dram_latency: Nanos::from_ns(85),
            name: "Kona-main",
            ..Self::kona()
        }
    }

    /// LegoOS: CMem DRAM cache, 10 µs measured remote fetch.
    pub fn legoos() -> Self {
        SystemModel {
            name: "LegoOS",
            cache_latencies: [Nanos::from_ns(2), Nanos::from_ns(6), Nanos::from_ns(20)],
            dram_latency: Nanos::from_ns(85),
            remote_latency: Nanos::micros(10),
        }
    }

    /// Infiniswap: CMem DRAM cache, 40 µs measured remote fetch.
    pub fn infiniswap() -> Self {
        SystemModel {
            name: "Infiniswap",
            remote_latency: Nanos::micros(40),
            ..Self::legoos()
        }
    }

    /// Kona-VM "achieves similar remote access latency with LegoOS,
    /// resulting in similar AMAT" (§6.2).
    pub fn kona_vm() -> Self {
        SystemModel {
            name: "Kona-VM",
            ..Self::legoos()
        }
    }

    /// System name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The remote-access latency constant.
    pub fn remote_latency(&self) -> Nanos {
        self.remote_latency
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AmatResult {
    /// Average memory access time in nanoseconds.
    pub amat_ns: f64,
    /// Fraction of accesses served at [L1, L2, LLC, DRAM-cache, remote].
    pub fractions: Vec<f64>,
    /// Total line accesses simulated.
    pub accesses: u64,
}

/// Runs `trace` through the system's hierarchy with a DRAM cache sized to
/// `cache_frac` of the trace footprint, with the given DRAM-cache block
/// size and associativity, and returns the AMAT.
///
/// A `cache_frac` of 0 models pure disaggregation (every LLC miss goes
/// remote); 1.0 holds the whole footprint locally.
///
/// # Panics
///
/// Panics if the trace is empty or `block_size` is not a power of two.
pub fn simulate(
    trace: &Trace,
    system: &SystemModel,
    cache_frac: f64,
    block_size: u64,
    ways: usize,
) -> AmatResult {
    assert!(!trace.is_empty(), "cannot simulate an empty trace");
    let footprint = trace.address_span();
    let capacity = dram_capacity(footprint, cache_frac, block_size, ways);
    let mut levels = HierarchyConfig::skylake().levels;
    levels.push(
        CacheConfig::new("DRAM-cache", capacity, ways, block_size)
            .expect("capacity rounded to set multiple"),
    );
    let mut hierarchy = CacheHierarchy::new(HierarchyConfig { levels });

    for event in trace.iter() {
        hierarchy.access_range(event.access);
    }
    amat_of(&hierarchy, system)
}

/// Shard-parallel variant of [`simulate`]: the trace is striped over
/// `plan.logical()` independent hierarchies by DRAM-cache block
/// (`block_number % logical`), each shard gets an equal way-aligned slice
/// of the DRAM-cache budget, and per-level hit counts merge in shard
/// order. The partitioning is part of the model — the result depends on
/// `plan`, but **not** on `shards`, which only picks how many worker
/// threads drive the shard hierarchies.
///
/// # Panics
///
/// As for [`simulate`].
pub fn simulate_sharded(
    trace: &Trace,
    system: &SystemModel,
    cache_frac: f64,
    block_size: u64,
    ways: usize,
    plan: ShardPlan,
    shards: Shards,
) -> AmatResult {
    assert!(!trace.is_empty(), "cannot simulate an empty trace");
    let logical = plan.logical() as usize;
    let way_bytes = block_size * ways as u64;
    let capacity = dram_capacity(trace.address_span(), cache_frac, block_size, ways);
    let shard_capacity = capacity / logical as u64 / way_bytes * way_bytes;

    let mut streams: Vec<Vec<TraceEvent>> = vec![Vec::new(); logical];
    for event in trace.iter() {
        let block = event.access.addr.raw() / block_size;
        streams[plan.shard_of_page(block) as usize].push(*event);
    }

    let driven = par_map(Jobs::new(shards.get()), streams, |_, events| {
        drive(&events, shard_capacity, block_size, ways)
    });

    // Merge per-level hit counts in shard order, then price the merged
    // fractions exactly like the unsharded path.
    let depth = driven[0].depth();
    let mut hits = vec![0u64; depth];
    let mut memory = 0u64;
    let mut total = 0u64;
    for hierarchy in &driven {
        for (level, count) in hits.iter_mut().enumerate() {
            *count += hierarchy.level_stats(level).hits;
        }
        memory += hierarchy.memory_accesses();
        total += hierarchy.total_accesses();
    }
    let latencies = [
        system.cache_latencies[0],
        system.cache_latencies[1],
        system.cache_latencies[2],
        system.dram_latency,
        system.remote_latency,
    ];
    let mut fractions: Vec<f64> = hits.iter().map(|&h| h as f64 / total as f64).collect();
    fractions.push(memory as f64 / total as f64);
    assert_eq!(fractions.len(), 5, "expected 4 levels + memory");
    let amat_ns = fractions
        .iter()
        .zip(latencies.iter())
        .map(|(f, l)| f * l.as_ns() as f64)
        .sum();
    AmatResult {
        amat_ns,
        fractions,
        accesses: total,
    }
}

/// Computes the AMAT of an already-driven hierarchy under a system model.
/// The hierarchy must be the Skylake levels plus one DRAM-cache level.
pub(crate) fn amat_of(hierarchy: &CacheHierarchy, system: &SystemModel) -> AmatResult {
    let fractions = hierarchy.hit_fractions();
    assert_eq!(fractions.len(), 5, "expected 4 levels + memory");
    let latencies = [
        system.cache_latencies[0],
        system.cache_latencies[1],
        system.cache_latencies[2],
        system.dram_latency,
        system.remote_latency,
    ];
    let amat_ns = fractions
        .iter()
        .zip(latencies.iter())
        .map(|(f, l)| f * l.as_ns() as f64)
        .sum();
    AmatResult {
        amat_ns,
        fractions,
        accesses: hierarchy.total_accesses(),
    }
}

/// Rounds a fractional DRAM-cache capacity to a whole number of sets.
pub(crate) fn dram_capacity(footprint: u64, cache_frac: f64, block_size: u64, ways: usize) -> u64 {
    assert!((0.0..=1.0).contains(&cache_frac), "cache_frac in [0,1]");
    let way_bytes = block_size * ways as u64;
    let raw = (footprint as f64 * cache_frac) as u64;
    raw / way_bytes * way_bytes
}

/// Helper shared with sweeps: replay a trace into a fresh hierarchy with
/// the given DRAM-cache geometry.
pub(crate) fn drive(
    events: &[TraceEvent],
    capacity: u64,
    block_size: u64,
    ways: usize,
) -> CacheHierarchy {
    let mut levels = HierarchyConfig::skylake().levels;
    levels.push(
        CacheConfig::new("DRAM-cache", capacity, ways, block_size)
            .expect("capacity rounded to set multiple"),
    );
    let mut hierarchy = CacheHierarchy::new(HierarchyConfig { levels });
    for event in events {
        hierarchy.access_range(event.access);
    }
    hierarchy
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::{MemAccess, VirtAddr, PAGE_SIZE_4K};

    fn stream_trace(pages: u64, passes: usize) -> Trace {
        let mut t = Trace::new();
        let mut time = 0u64;
        for _ in 0..passes {
            for p in 0..pages {
                t.push(TraceEvent::new(
                    Nanos::from_ns(time),
                    MemAccess::read(VirtAddr::new(p * PAGE_SIZE_4K), 4096),
                ));
                time += 1;
            }
        }
        t
    }

    #[test]
    fn full_cache_needs_no_remote() {
        let trace = stream_trace(64, 3);
        let r = simulate(&trace, &SystemModel::kona(), 1.0, 4096, 4);
        // After the cold pass, everything hits locally; remote fraction
        // must be small (only cold misses).
        assert!(r.fractions[4] < 0.4, "remote fraction {}", r.fractions[4]);
    }

    #[test]
    fn zero_cache_sends_llc_misses_remote() {
        let trace = stream_trace(64, 2);
        let r = simulate(&trace, &SystemModel::kona(), 0.0, 4096, 4);
        let full = simulate(&trace, &SystemModel::kona(), 1.0, 4096, 4);
        assert!(r.amat_ns > full.amat_ns);
    }

    #[test]
    fn infiniswap_worst_legoos_middle_kona_best() {
        // Random-access trace over 8 MiB with a 25% cache.
        let mut t = Trace::new();
        let mut x = 12345u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (x >> 16) % (8 << 20);
            t.push(TraceEvent::new(
                Nanos::from_ns(i),
                MemAccess::read(VirtAddr::new(addr), 8),
            ));
        }
        let kona = simulate(&t, &SystemModel::kona(), 0.25, 4096, 4);
        let lego = simulate(&t, &SystemModel::legoos(), 0.25, 4096, 4);
        let inf = simulate(&t, &SystemModel::infiniswap(), 0.25, 4096, 4);
        assert!(kona.amat_ns < lego.amat_ns);
        assert!(lego.amat_ns < inf.amat_ns);
        // Paper: Infiniswap consistently 2.3-3.7X worse than LegoOS.
        assert!(inf.amat_ns / lego.amat_ns > 1.5);
    }

    #[test]
    fn kona_main_beats_kona_when_local_hits_dominate() {
        let trace = stream_trace(32, 8);
        let kona = simulate(&trace, &SystemModel::kona(), 1.0, 4096, 4);
        let main = simulate(&trace, &SystemModel::kona_main(), 1.0, 4096, 4);
        assert!(main.amat_ns <= kona.amat_ns);
    }

    #[test]
    fn fractions_sum_to_one() {
        let trace = stream_trace(16, 2);
        let r = simulate(&trace, &SystemModel::kona(), 0.5, 4096, 4);
        let sum: f64 = r.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(r.accesses, 16 * 2 * 64);
    }

    #[test]
    fn dram_capacity_rounds_to_sets() {
        assert_eq!(dram_capacity(1 << 20, 0.5, 4096, 4), 512 * 1024);
        let c = dram_capacity(100_000, 0.33, 4096, 4);
        assert_eq!(c % (4096 * 4), 0);
        assert_eq!(dram_capacity(1 << 20, 0.0, 4096, 4), 0);
    }

    #[test]
    fn kona_vm_matches_legoos_latency() {
        assert_eq!(
            SystemModel::kona_vm().remote_latency(),
            SystemModel::legoos().remote_latency()
        );
    }

    #[test]
    #[should_panic]
    fn empty_trace_panics() {
        simulate(&Trace::new(), &SystemModel::kona(), 0.5, 4096, 4);
    }

    #[test]
    fn sharded_amat_is_worker_count_invariant() {
        let trace = stream_trace(64, 3);
        let plan = ShardPlan::new(4);
        let serial = simulate_sharded(
            &trace, &SystemModel::kona(), 0.5, 4096, 4, plan, Shards::serial(),
        );
        for workers in [2usize, 8] {
            let wide = simulate_sharded(
                &trace, &SystemModel::kona(), 0.5, 4096, 4, plan, Shards::new(workers),
            );
            assert_eq!(serial, wide, "workers={workers}");
        }
        let sum: f64 = serial.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(serial.accesses, trace.iter().count() as u64 * 64);
    }

    #[test]
    fn shard_plan_is_part_of_the_model() {
        let trace = stream_trace(64, 3);
        let four = simulate_sharded(
            &trace, &SystemModel::kona(), 0.5, 4096, 4, ShardPlan::new(4), Shards::serial(),
        );
        let one = simulate_sharded(
            &trace, &SystemModel::kona(), 0.5, 4096, 4, ShardPlan::new(1), Shards::serial(),
        );
        // A 1-way plan with the full budget matches the unsharded path.
        let flat = simulate(&trace, &SystemModel::kona(), 0.5, 4096, 4);
        assert_eq!(one, flat);
        assert!(four.accesses == one.accesses);
    }
}
