//! Parameter sweeps behind the Fig 8 panels.
//!
//! Each sweep point replays the whole trace through an independent cache
//! hierarchy, so points are embarrassingly parallel. The `*_jobs` variants
//! fan the points out over [`kona_types::par_map`] worker threads; results
//! come back in input order, so output is byte-identical to a sequential
//! run regardless of the job count. The plain functions are serial
//! wrappers (`Jobs::serial()`).

use crate::model::{amat_of, dram_capacity, drive, AmatResult, SystemModel};
use kona_trace::Trace;
use kona_types::{par_map, Jobs};

/// One point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value (cache %, block bytes, or ways).
    pub x: f64,
    /// Result at this point.
    pub result: AmatResult,
}

/// Sweeps the DRAM-cache size as a percentage of the trace footprint
/// (Fig 8a–c x-axis). `percents` are in `[0, 100]`.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn sweep_cache_size(
    trace: &Trace,
    system: &SystemModel,
    percents: &[u32],
    block_size: u64,
    ways: usize,
) -> Vec<SweepPoint> {
    sweep_cache_size_jobs(trace, system, percents, block_size, ways, Jobs::serial())
}

/// [`sweep_cache_size`] with the points fanned out over `jobs` worker
/// threads. Results are merged in input order: output is byte-identical
/// to the serial sweep.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn sweep_cache_size_jobs(
    trace: &Trace,
    system: &SystemModel,
    percents: &[u32],
    block_size: u64,
    ways: usize,
    jobs: Jobs,
) -> Vec<SweepPoint> {
    assert!(!trace.is_empty(), "cannot sweep an empty trace");
    let footprint = trace.address_span();
    par_map(jobs, percents.to_vec(), |_, pct| {
        let capacity = dram_capacity(footprint, f64::from(pct) / 100.0, block_size, ways);
        let hierarchy = drive(trace.as_slice(), capacity, block_size, ways);
        SweepPoint {
            x: f64::from(pct),
            result: amat_of(&hierarchy, system),
        }
    })
}

/// Sweeps the DRAM-cache block size (Fig 8d x-axis) at a fixed cache
/// fraction. Block sizes must be powers of two.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn sweep_block_size(
    trace: &Trace,
    system: &SystemModel,
    block_sizes: &[u64],
    cache_frac: f64,
    ways: usize,
) -> Vec<SweepPoint> {
    sweep_block_size_jobs(trace, system, block_sizes, cache_frac, ways, Jobs::serial())
}

/// [`sweep_block_size`] with the points fanned out over `jobs` worker
/// threads (order-preserving; see [`sweep_cache_size_jobs`]).
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn sweep_block_size_jobs(
    trace: &Trace,
    system: &SystemModel,
    block_sizes: &[u64],
    cache_frac: f64,
    ways: usize,
    jobs: Jobs,
) -> Vec<SweepPoint> {
    assert!(!trace.is_empty(), "cannot sweep an empty trace");
    let footprint = trace.address_span();
    par_map(jobs, block_sizes.to_vec(), |_, bs| {
        let capacity = dram_capacity(footprint, cache_frac, bs, ways);
        let hierarchy = drive(trace.as_slice(), capacity, bs, ways);
        SweepPoint {
            x: bs as f64,
            result: amat_of(&hierarchy, system),
        }
    })
}

/// Sweeps the DRAM-cache associativity ("we found that the associativity
/// does not significantly impact overall latency", §6.2).
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn sweep_associativity(
    trace: &Trace,
    system: &SystemModel,
    ways_list: &[usize],
    cache_frac: f64,
    block_size: u64,
) -> Vec<SweepPoint> {
    sweep_associativity_jobs(trace, system, ways_list, cache_frac, block_size, Jobs::serial())
}

/// [`sweep_associativity`] with the points fanned out over `jobs` worker
/// threads (order-preserving; see [`sweep_cache_size_jobs`]).
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn sweep_associativity_jobs(
    trace: &Trace,
    system: &SystemModel,
    ways_list: &[usize],
    cache_frac: f64,
    block_size: u64,
    jobs: Jobs,
) -> Vec<SweepPoint> {
    assert!(!trace.is_empty(), "cannot sweep an empty trace");
    let footprint = trace.address_span();
    par_map(jobs, ways_list.to_vec(), |_, ways| {
        let capacity = dram_capacity(footprint, cache_frac, block_size, ways);
        let hierarchy = drive(trace.as_slice(), capacity, block_size, ways);
        SweepPoint {
            x: ways as f64,
            result: amat_of(&hierarchy, system),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_trace::TraceEvent;
    use kona_types::{MemAccess, Nanos, VirtAddr};

    fn zipf_like_trace() -> Trace {
        // Skewed random accesses over 4 MiB.
        let mut t = Trace::new();
        let mut x = 99u64;
        for i in 0..30_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Square the uniform draw to skew towards low addresses.
            let u = ((x >> 33) as f64) / (u32::MAX as f64 / 2.0).max(1.0);
            let addr = ((u * u) * (4 << 20) as f64) as u64 % (4 << 20);
            t.push(TraceEvent::new(
                Nanos::from_ns(i),
                MemAccess::read(VirtAddr::new(addr), 8),
            ));
        }
        t
    }

    #[test]
    fn amat_decreases_with_cache_size() {
        let t = zipf_like_trace();
        let pts = sweep_cache_size(&t, &SystemModel::legoos(), &[0, 25, 50, 100], 4096, 4);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].result.amat_ns <= w[0].result.amat_ns + 1e-9,
                "AMAT should not increase with cache size: {} -> {}",
                w[0].result.amat_ns,
                w[1].result.amat_ns
            );
        }
    }

    #[test]
    fn kona_degrades_slower_than_legoos() {
        let t = zipf_like_trace();
        let kona = sweep_cache_size(&t, &SystemModel::kona(), &[25, 100], 4096, 4);
        let lego = sweep_cache_size(&t, &SystemModel::legoos(), &[25, 100], 4096, 4);
        let kona_slope = kona[0].result.amat_ns / kona[1].result.amat_ns;
        let lego_slope = lego[0].result.amat_ns / lego[1].result.amat_ns;
        assert!(
            lego_slope > kona_slope,
            "LegoOS should degrade faster: kona {kona_slope:.2} lego {lego_slope:.2}"
        );
    }

    #[test]
    fn block_size_sweep_has_interior_optimum_shape() {
        let t = zipf_like_trace();
        let pts = sweep_block_size(
            &t,
            &SystemModel::kona(),
            &[64, 256, 1024, 4096, 16384],
            0.27,
            4,
        );
        assert_eq!(pts.len(), 5);
        // Tiny blocks miss spatial locality; huge blocks conflict: the
        // minimum should not be at either extreme for a skewed workload.
        let best = pts
            .iter()
            .min_by(|a, b| a.result.amat_ns.total_cmp(&b.result.amat_ns))
            .unwrap();
        assert!(best.x > 64.0, "64 B blocks should not win, best={}", best.x);
    }

    #[test]
    fn associativity_barely_matters() {
        let t = zipf_like_trace();
        let pts = sweep_associativity(&t, &SystemModel::kona(), &[1, 2, 4, 8], 0.5, 4096);
        let min = pts
            .iter()
            .map(|p| p.result.amat_ns)
            .fold(f64::INFINITY, f64::min);
        let max = pts
            .iter()
            .map(|p| p.result.amat_ns)
            .fold(0.0f64, f64::max);
        assert!(
            max / min < 1.8,
            "associativity impact should be modest: {min:.1}..{max:.1}"
        );
    }
}
