//! Windowed time-series over the metrics registry.
//!
//! End-of-run aggregates hide dynamics: a fault plan's congestion spike,
//! a rebalance storm or an eviction-backlog ramp are invisible between
//! t=0 and the final table. The [`TimeSeriesCollector`] fixes that by
//! snapshotting the registry on simulated-time window boundaries and
//! storing per-window *deltas*:
//!
//! * counters — the increase during the window (zero deltas omitted);
//! * gauges — the value at window close, recorded only when it changed
//!   (readers carry the last value forward);
//! * histograms — full bucket deltas, so per-window p50/p95/p99 are
//!   computed from exactly the observations of that window.
//!
//! Windows with no activity are omitted entirely, which keeps long idle
//! runs cheap and makes the encoding a sparse delta stream.
//!
//! # Determinism and merging
//!
//! [`SeriesData::merge`] combines shards by window index — counters add,
//! gauges take the later shard's value, histogram buckets add — so a
//! coordinator that merges worker series in input order produces output
//! byte-identical to a sequential run at any `--jobs` count.
//! [`SeriesData::prefixed`] namespaces a worker's metrics (e.g. by fault
//! plan) so independent shards never collide in the first place.
//!
//! # Window attribution
//!
//! The collector samples at the observation points the runtimes thread
//! through it ([`Telemetry::observe_time`](crate::Telemetry::observe_time)).
//! All activity between two observations lands in the window containing
//! the *earlier* observation's boundary crossing — sampling semantics,
//! not event semantics. Hooks sit on every simulated-clock advance (verb
//! posts, fabric waits, log apply, eviction flushes), so in practice a
//! window's deltas track its simulated interval closely.

use crate::metrics::{HistogramData, HistogramSummary, Registry};
use kona_types::Nanos;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default window width (250µs of simulated time) used when a window
/// size is requested but not specified.
pub const DEFAULT_WINDOW_NS: u64 = 250_000;

/// The delta of one window: everything that changed between two
/// consecutive simulated-time boundaries.
#[derive(Debug, Clone, Default)]
pub struct SeriesWindow {
    /// Window index; the window covers
    /// `[index * window_ns, (index + 1) * window_ns)`.
    pub index: u64,
    /// Counter increases during the window (zero deltas omitted).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at window close, present only when changed.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram observations recorded during the window (bucket deltas;
    /// empty histograms omitted).
    pub histograms: BTreeMap<String, HistogramData>,
}

impl SeriesWindow {
    /// An empty window at `index` (used by readers to fill gaps).
    pub fn empty(index: u64) -> Self {
        SeriesWindow {
            index,
            ..SeriesWindow::default()
        }
    }

    /// Whether nothing changed in this window.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Simulated start time of the window.
    pub fn start_ns(&self, window_ns: u64) -> u64 {
        self.index.saturating_mul(window_ns)
    }

    /// Adds `other`'s deltas (same window index on another shard) into
    /// this window: counters add, gauges take `other`'s value, histogram
    /// buckets add exactly.
    fn merge_from(&mut self, other: &SeriesWindow) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, data) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(data);
        }
    }

    /// A copy with every metric renamed to `{prefix}.{name}`.
    fn prefixed(&self, prefix: &str) -> SeriesWindow {
        let rename = |name: &String| format!("{prefix}.{name}");
        SeriesWindow {
            index: self.index,
            counters: self.counters.iter().map(|(n, v)| (rename(n), *v)).collect(),
            gauges: self.gauges.iter().map(|(n, v)| (rename(n), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, d)| (rename(n), d.clone()))
                .collect(),
        }
    }
}

/// A complete delta-encoded series: the window width plus every
/// non-empty window in index order.
#[derive(Debug, Clone)]
pub struct SeriesData {
    /// Window width in simulated nanoseconds.
    pub window_ns: u64,
    /// Non-empty windows, sorted by index.
    pub windows: Vec<SeriesWindow>,
}

impl SeriesData {
    /// An empty series with `window_ns`-wide windows (clamped to ≥ 1).
    pub fn new(window_ns: u64) -> Self {
        SeriesData {
            window_ns: window_ns.max(1),
            windows: Vec::new(),
        }
    }

    /// Merges another shard's series into this one by window index.
    /// Deterministic in call order and associative, so merging worker
    /// shards in input order yields byte-identical output at any job
    /// count.
    ///
    /// # Panics
    ///
    /// Panics when the window widths differ — merging incompatible
    /// series is a caller bug.
    pub fn merge(&mut self, other: &SeriesData) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "merging series with different window widths"
        );
        for w in &other.windows {
            match self.windows.binary_search_by_key(&w.index, |x| x.index) {
                Ok(i) => self.windows[i].merge_from(w),
                Err(i) => self.windows.insert(i, w.clone()),
            }
        }
    }

    /// A copy with every metric renamed to `{prefix}.{name}`, so shards
    /// from independent runs (e.g. one per fault plan) can be merged into
    /// one document without colliding.
    pub fn prefixed(&self, prefix: &str) -> SeriesData {
        SeriesData {
            window_ns: self.window_ns,
            windows: self.windows.iter().map(|w| w.prefixed(prefix)).collect(),
        }
    }

    /// Sum of `name`'s counter deltas across all windows (the value the
    /// end-of-run registry must report for conservation to hold).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.windows
            .iter()
            .filter_map(|w| w.counters.get(name))
            .sum()
    }

    /// Serializes the series as a JSON document: the window width plus an
    /// array of windows, each holding its counter deltas, changed gauges
    /// and per-window histogram summaries.
    pub fn to_json(&self) -> String {
        use crate::export::{json_escape, json_f64};
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"window_ns\": {},\n  \"windows\": [", self.window_ns);
        for (wi, w) in self.windows.iter().enumerate() {
            let sep = if wi == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"index\": {}, \"start_ns\": {}, \"counters\": {{",
                w.index,
                w.start_ns(self.window_ns)
            );
            for (i, (name, v)) in w.counters.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": {v}", json_escape(name));
            }
            out.push_str("}, \"gauges\": {");
            for (i, (name, v)) in w.gauges.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": {}", json_escape(name), json_f64(*v));
            }
            out.push_str("}, \"histograms\": {");
            for (i, (name, data)) in w.histograms.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let h = HistogramSummary::of(data);
                let _ = write!(
                    out,
                    "{sep}\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    json_escape(name),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    json_f64(h.mean),
                    h.p50,
                    h.p95,
                    h.p99
                );
            }
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serializes the series as CSV rows:
    /// `window,start_ns,kind,name,field,value`.
    pub fn to_csv(&self) -> String {
        use crate::export::json_f64;
        let mut out = String::from("window,start_ns,kind,name,field,value\n");
        let quote = |name: &str| {
            if name.contains(',') || name.contains('"') {
                format!("\"{}\"", name.replace('"', "\"\""))
            } else {
                name.to_string()
            }
        };
        for w in &self.windows {
            let start = w.start_ns(self.window_ns);
            let idx = w.index;
            for (name, v) in &w.counters {
                let _ = writeln!(out, "{idx},{start},counter,{},value,{v}", quote(name));
            }
            for (name, v) in &w.gauges {
                let _ = writeln!(
                    out,
                    "{idx},{start},gauge,{},value,{}",
                    quote(name),
                    json_f64(*v)
                );
            }
            for (name, data) in &w.histograms {
                let h = HistogramSummary::of(data);
                let name = quote(name);
                for (field, v) in [
                    ("count", h.count),
                    ("sum", h.sum),
                    ("min", h.min),
                    ("max", h.max),
                    ("p50", h.p50),
                    ("p95", h.p95),
                    ("p99", h.p99),
                ] {
                    let _ = writeln!(out, "{idx},{start},histogram,{name},{field},{v}");
                }
                let _ = writeln!(out, "{idx},{start},histogram,{name},mean,{}", json_f64(h.mean));
            }
        }
        out
    }
}

/// Collects per-window registry deltas on simulated-time boundaries.
///
/// Owned by [`Telemetry`](crate::Telemetry); the runtimes feed it via
/// `observe_time(now)` on every simulated-clock advance. Observations are
/// folded through `max`, so mixed clock sources (app charge clock, fabric
/// clock, per-node clocks) form one monotone axis.
#[derive(Debug)]
pub(crate) struct TimeSeriesCollector {
    window_ns: u64,
    /// Latest simulated time observed.
    last_seen: u64,
    /// Index of the window currently accumulating.
    open_index: u64,
    /// Registry values at the last window close (the delta baseline).
    base_counters: BTreeMap<String, u64>,
    base_gauges: BTreeMap<String, f64>,
    base_histograms: BTreeMap<String, HistogramData>,
    data: SeriesData,
}

impl TimeSeriesCollector {
    /// A collector with `window_ns`-wide windows (clamped to ≥ 1).
    pub fn new(window_ns: u64) -> Self {
        let data = SeriesData::new(window_ns);
        TimeSeriesCollector {
            window_ns: data.window_ns,
            last_seen: 0,
            open_index: 0,
            base_counters: BTreeMap::new(),
            base_gauges: BTreeMap::new(),
            base_histograms: BTreeMap::new(),
            data,
        }
    }

    /// Window width in simulated nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of closed windows so far.
    pub fn len(&self) -> usize {
        self.data.windows.len()
    }

    /// The closed windows.
    pub fn windows(&self) -> &[SeriesWindow] {
        &self.data.windows
    }

    /// The collected series (closed windows only; call [`flush`] first to
    /// include the tail window).
    ///
    /// [`flush`]: TimeSeriesCollector::flush
    pub fn data(&self) -> &SeriesData {
        &self.data
    }

    /// Notes that simulated time reached `now`, closing the open window
    /// if a boundary was crossed. Non-monotone observations (a worker's
    /// private clock lagging the fabric) are folded through `max`.
    pub fn observe(&mut self, now: Nanos, registry: &Registry) {
        let now = now.as_ns();
        if now <= self.last_seen {
            return;
        }
        self.last_seen = now;
        let idx = now / self.window_ns;
        if idx != self.open_index {
            self.close_open(registry);
            self.open_index = idx;
        }
    }

    /// Closes the tail window so the series accounts for every recorded
    /// delta (conservation: window deltas sum to final registry totals).
    pub fn flush(&mut self, registry: &Registry) {
        self.close_open(registry);
    }

    /// Diffs the registry against the baseline, pushes the delta as the
    /// open window (when non-empty) and re-baselines.
    fn close_open(&mut self, registry: &Registry) {
        let cur = registry.dump();
        let mut w = SeriesWindow::empty(self.open_index);
        for (name, v) in &cur.counters {
            let base = self.base_counters.get(name).copied().unwrap_or(0);
            if *v != base {
                w.counters.insert(name.clone(), v - base);
            }
        }
        for (name, v) in &cur.gauges {
            let changed = self
                .base_gauges
                .get(name)
                .is_none_or(|b| b.to_bits() != v.to_bits());
            if changed {
                w.gauges.insert(name.clone(), *v);
            }
        }
        for (name, h) in &cur.histograms {
            let delta = match self.base_histograms.get(name) {
                Some(base) => h.delta_since(base),
                None => h.clone(),
            };
            if delta.count() > 0 {
                w.histograms.insert(name.clone(), delta);
            }
        }
        if !w.is_empty() {
            match self.data.windows.binary_search_by_key(&w.index, |x| x.index) {
                // Re-opening a window after a flush (e.g. series() mid-run
                // followed by more activity): fold into the existing one.
                Ok(i) => self.data.windows[i].merge_from(&w),
                Err(i) => self.data.windows.insert(i, w),
            }
        }
        self.base_counters = cur.counters;
        self.base_gauges = cur.gauges;
        self.base_histograms = cur.histograms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe(c: &mut TimeSeriesCollector, reg: &Registry, ns: u64) {
        c.observe(Nanos::from_ns(ns), reg);
    }

    #[test]
    fn windows_hold_deltas_and_conserve_totals() {
        let mut reg = Registry::new();
        let mut c = TimeSeriesCollector::new(100);
        reg.counter("ops").add(3);
        reg.histogram("lat").record(10);
        observe(&mut c, &reg, 50);
        observe(&mut c, &reg, 150); // closes window 0
        reg.counter("ops").add(5);
        reg.histogram("lat").record(500);
        reg.gauge("depth").set(2.0);
        observe(&mut c, &reg, 260); // closes window 1
        c.flush(&reg);

        let data = c.data();
        assert_eq!(data.counter_total("ops"), 8);
        assert_eq!(data.windows[0].counters["ops"], 3);
        assert_eq!(data.windows[1].counters["ops"], 5);
        assert_eq!(data.windows[1].gauges["depth"], 2.0);
        assert_eq!(data.windows[0].histograms["lat"].count(), 1);
        assert_eq!(data.windows[1].histograms["lat"].max(), 500);
        // tel-internal counters absent → not in windows.
        assert!(!data.windows[0].counters.contains_key("missing"));
    }

    #[test]
    fn quiet_windows_are_omitted() {
        let mut reg = Registry::new();
        let mut c = TimeSeriesCollector::new(100);
        reg.counter("ops").inc();
        observe(&mut c, &reg, 10);
        // Jump far ahead with no activity: one delta window, no filler.
        observe(&mut c, &reg, 1_000);
        observe(&mut c, &reg, 2_000);
        c.flush(&reg);
        assert_eq!(c.len(), 1);
        assert_eq!(c.windows()[0].index, 0);
    }

    #[test]
    fn non_monotone_observations_fold_through_max() {
        let mut reg = Registry::new();
        let mut c = TimeSeriesCollector::new(100);
        reg.counter("a").inc();
        observe(&mut c, &reg, 250); // closes window 0, opens window 2
        observe(&mut c, &reg, 120); // stale clock: ignored
        reg.counter("a").inc();
        observe(&mut c, &reg, 310); // closes window 2
        c.flush(&reg);
        let data = c.data();
        assert_eq!(data.counter_total("a"), 2);
        assert_eq!(data.windows[0].index, 0);
        assert_eq!(data.windows[1].index, 2);
    }

    #[test]
    fn merge_is_exact_and_prefix_namespaces() {
        let mut reg_a = Registry::new();
        let mut a = TimeSeriesCollector::new(100);
        reg_a.counter("ops").add(2);
        reg_a.histogram("lat").record(100);
        a.observe(Nanos::from_ns(150), &reg_a);
        a.flush(&reg_a);

        let mut reg_b = Registry::new();
        let mut b = TimeSeriesCollector::new(100);
        reg_b.counter("ops").add(3);
        reg_b.histogram("lat").record(300);
        b.observe(Nanos::from_ns(150), &reg_b);
        b.flush(&reg_b);

        let mut merged = a.data().clone();
        merged.merge(b.data());
        assert_eq!(merged.counter_total("ops"), 5);
        assert_eq!(merged.windows[0].histograms["lat"].count(), 2);

        let p = a.data().prefixed("calm");
        assert_eq!(p.counter_total("calm.ops"), 2);
        assert!(p.windows[0].histograms.contains_key("calm.lat"));
    }

    #[test]
    fn json_and_csv_are_well_formed() {
        let mut reg = Registry::new();
        let mut c = TimeSeriesCollector::new(1_000);
        reg.counter("ops").add(4);
        reg.gauge("g").set(1.5);
        reg.histogram("lat").record(2_000);
        c.observe(Nanos::from_ns(1_500), &reg);
        c.flush(&reg);
        let json = c.data().to_json();
        assert!(json.contains("\"window_ns\": 1000"));
        assert!(json.contains("\"ops\": 4"));
        assert!(json.contains("\"p99\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let csv = c.data().to_csv();
        assert!(csv.starts_with("window,start_ns,kind,name,field,value\n"));
        assert!(csv.contains("0,0,counter,ops,value,4\n"));
        assert!(csv.contains("histogram,lat,count,1\n"));
    }
}
