//! Critical-path latency attribution over completed traces.
//!
//! The paper's argument is an attribution argument: Kona wins because
//! page-fault handling, dirty tracking and eviction move *off* the
//! application's critical path. This module walks each completed
//! [`TraceRecord`] tree and decomposes its end-to-end latency into seven
//! [`Component`]s that **sum exactly** (in simulated nanoseconds) to the
//! root span's duration.
//!
//! # Component taxonomy
//!
//! Every span charges either the critical side (same charge as the root —
//! the app thread for accesses) or the hidden side (background work
//! overlapped behind it). A span's *contribution* is its duration minus
//! the durations of its same-charge children:
//!
//! * a **leaf**'s whole duration maps by kind — local-hit, FMem fill,
//!   wire verbs, segment copies, retry backoff, coherence work;
//! * an **interior** span's residual maps by kind — a writeback's
//!   residual is ACK wait (wire), anything else is queueing: time the
//!   operation spent waiting on machinery rather than moving bytes.
//!
//! Because the charge clocks in `trace.rs` make `duration = Σ same-charge
//! children + residual` true by construction, the critical-side component
//! sums equal the root duration identically — the analyzer still verifies
//! it per trace and counts violations (which `fig_attrib` and the
//! `obs-smoke` CI job require to be zero).

use crate::event::EventKind;
use crate::trace::{charge_of, OpKind, TraceRecord};
use crate::Track;
use kona_types::Nanos;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Where a nanosecond of a traced operation went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// CPU cache / local DRAM hits.
    LocalHit,
    /// Coherence work: bitmap scans, page faults, TLB shootdowns.
    Coherence,
    /// FMem fills and lookups (the local far-memory cache tier).
    FMem,
    /// Verb time on the wire, including writeback ACK wait.
    Wire,
    /// Segment gather/copy time (AVX or DMA copy engines).
    Copy,
    /// Retry backoff after transient faults.
    RetryBackoff,
    /// Waiting on machinery: read-your-writes flushes, hand-off slack and
    /// any interior residual not attributable to a specific device.
    Queueing,
}

impl Component {
    /// All components, in table order.
    pub const ALL: [Component; 7] = [
        Component::LocalHit,
        Component::Coherence,
        Component::FMem,
        Component::Wire,
        Component::Copy,
        Component::RetryBackoff,
        Component::Queueing,
    ];

    /// A stable snake_case name for tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Component::LocalHit => "local_hit",
            Component::Coherence => "coherence",
            Component::FMem => "fmem",
            Component::Wire => "wire",
            Component::Copy => "copy",
            Component::RetryBackoff => "retry_backoff",
            Component::Queueing => "queueing",
        }
    }

    fn index(self) -> usize {
        Component::ALL
            .iter()
            .position(|c| *c == self)
            .expect("component in ALL")
    }
}

/// Component a leaf span's full duration maps to.
fn leaf_component(kind: EventKind) -> Component {
    match kind {
        EventKind::LocalHit => Component::LocalHit,
        EventKind::FmemFill | EventKind::FmemLookup => Component::FMem,
        EventKind::BitmapScan
        | EventKind::PageFault
        | EventKind::TlbShootdown
        | EventKind::Translate => Component::Coherence,
        EventKind::SegmentCopy => Component::Copy,
        EventKind::Verb { .. } => Component::Wire,
        EventKind::Backoff | EventKind::Fault(_) => Component::RetryBackoff,
        _ => residual_component(kind),
    }
}

/// Component an interior span's residual (duration minus same-charge
/// children) maps to.
fn residual_component(kind: EventKind) -> Component {
    match kind {
        // A writeback's uncovered tail is the ACK round-trip on the wire.
        EventKind::Writeback => Component::Wire,
        // An eviction's uncovered tail is copy-engine bookkeeping.
        EventKind::Evict => Component::Copy,
        _ => Component::Queueing,
    }
}

/// Nanoseconds per component, indexed by [`Component::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentVec(pub [u64; 7]);

impl ComponentVec {
    fn add(&mut self, c: Component, ns: u64) {
        self.0[c.index()] += ns;
    }

    fn merge(&mut self, other: &ComponentVec) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// Total nanoseconds across all components.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The value for one component.
    pub fn get(&self, c: Component) -> u64 {
        self.0[c.index()]
    }

    fn json(&self) -> String {
        let mut out = String::from("{");
        for (i, c) in Component::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{}", c.name(), self.0[i]);
        }
        out.push('}');
        out
    }
}

/// The decomposition of one trace.
#[derive(Debug, Clone)]
pub struct TraceAttribution {
    /// The trace's identity.
    pub id: crate::TraceId,
    /// The operation it covered.
    pub op: OpKind,
    /// End-to-end latency of the operation (root span duration).
    pub total: Nanos,
    /// Critical-side components; sums exactly to `total`.
    pub critical: ComponentVec,
    /// Background work overlapped behind the operation.
    pub hidden: ComponentVec,
    /// Whether `critical.total() == total` held (it must).
    pub exact: bool,
}

/// Walks a completed trace and attributes every nanosecond.
///
/// Returns `None` for malformed traces (no root span).
pub fn analyze_trace(rec: &TraceRecord) -> Option<TraceAttribution> {
    let spans = &rec.spans;
    let root_idx = spans.iter().position(|s| s.parent == crate::SpanId::NONE)?;
    let index_of: BTreeMap<u32, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span.0, i))
        .collect();

    // Derive each span's charge with the same rule the recorder used.
    let mut charge = vec![Track::App; spans.len()];
    // Spans are stored children-before-parents; walk parents-first.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(i));
    for &i in &order {
        let parent_charge = index_of
            .get(&spans[i].parent.0)
            .map(|&pi| charge[pi])
            .or((i != root_idx).then_some(Track::App));
        charge[i] = charge_of(spans[i].track, parent_charge);
    }

    // Sum same-charge child durations per parent.
    let mut child_cover = vec![0u64; spans.len()];
    let mut has_same_charge_child = vec![false; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if let Some(&pi) = index_of.get(&s.parent.0) {
            if charge[pi] == charge[i] {
                child_cover[pi] += s.duration.as_ns();
                has_same_charge_child[pi] = true;
            }
        }
    }

    let root_charge = charge[root_idx];
    let mut critical = ComponentVec::default();
    let mut hidden = ComponentVec::default();
    for (i, s) in spans.iter().enumerate() {
        let dur = s.duration.as_ns();
        let contrib = dur.saturating_sub(child_cover[i]);
        if contrib == 0 {
            continue;
        }
        let component = if has_same_charge_child[i] {
            residual_component(s.kind)
        } else {
            leaf_component(s.kind)
        };
        if charge[i] == root_charge {
            critical.add(component, contrib);
        } else {
            hidden.add(component, contrib);
        }
    }

    let total = spans[root_idx].duration;
    Some(TraceAttribution {
        id: rec.id,
        op: rec.op,
        total,
        critical,
        hidden,
        exact: critical.total() == total.as_ns(),
    })
}

/// Aggregate attribution for one operation kind.
#[derive(Debug, Clone, Default)]
pub struct OpAttribution {
    /// Number of traces of this kind.
    pub count: u64,
    /// Sum of end-to-end latencies.
    pub total_ns: u64,
    /// Critical-side component sums.
    pub critical: ComponentVec,
    /// Hidden (overlapped background) component sums.
    pub hidden: ComponentVec,
}

/// Streaming aggregator: observes each completed trace, keeps per-op and
/// overall component sums plus the top-k slowest traces, and counts
/// invariant violations (traces whose critical components did not sum to
/// their duration — must stay zero).
#[derive(Debug, Clone)]
pub struct AttributionEngine {
    ops: BTreeMap<OpKind, OpAttribution>,
    top: Vec<TraceAttribution>,
    top_k: usize,
    traces: u64,
    violations: u64,
}

impl AttributionEngine {
    /// An engine keeping the `top_k` slowest traces.
    pub fn new(top_k: usize) -> Self {
        AttributionEngine {
            ops: BTreeMap::new(),
            top: Vec::new(),
            top_k,
            traces: 0,
            violations: 0,
        }
    }

    /// Folds one completed trace into the aggregate.
    pub fn observe(&mut self, rec: &TraceRecord) {
        let Some(attr) = analyze_trace(rec) else {
            self.violations += 1;
            return;
        };
        self.traces += 1;
        if !attr.exact {
            self.violations += 1;
        }
        let agg = self.ops.entry(attr.op).or_default();
        agg.count += 1;
        agg.total_ns += attr.total.as_ns();
        agg.critical.merge(&attr.critical);
        agg.hidden.merge(&attr.hidden);
        // Keep the slowest k, ordered by (duration desc, id asc) so the
        // selection is deterministic across job counts and replays.
        let insert_at = self
            .top
            .iter()
            .position(|t| {
                (t.total < attr.total) || (t.total == attr.total && t.id > attr.id)
            })
            .unwrap_or(self.top.len());
        self.top.insert(insert_at, attr);
        self.top.truncate(self.top_k);
    }

    /// Traces observed.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Traces whose attribution failed the exact-sum invariant.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Per-operation aggregates in stable order.
    pub fn ops(&self) -> &BTreeMap<OpKind, OpAttribution> {
        &self.ops
    }

    /// The slowest traces, by (duration desc, trace id asc).
    pub fn top(&self) -> &[TraceAttribution] {
        &self.top
    }

    /// Sum across all operations.
    pub fn overall(&self) -> OpAttribution {
        let mut all = OpAttribution::default();
        for agg in self.ops.values() {
            all.count += agg.count;
            all.total_ns += agg.total_ns;
            all.critical.merge(&agg.critical);
            all.hidden.merge(&agg.hidden);
        }
        all
    }

    /// The aggregate (plus top-k) as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"traces\": {},\n  \"invariant_violations\": {},\n  \"ops\": {{",
            self.traces, self.violations
        );
        for (i, (op, agg)) in self.ops.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\":{},\"total_ns\":{},\"critical\":{},\"hidden\":{}}}",
                op.name(),
                agg.count,
                agg.total_ns,
                agg.critical.json(),
                agg.hidden.json()
            );
        }
        let overall = self.overall();
        let _ = write!(
            out,
            "\n  }},\n  \"overall\": {{\"count\":{},\"total_ns\":{},\"critical\":{},\"hidden\":{}}},\n  \"top\": [",
            overall.count,
            overall.total_ns,
            overall.critical.json(),
            overall.hidden.json()
        );
        for (i, t) in self.top.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"trace\":{},\"op\":\"{}\",\"total_ns\":{},\"critical\":{},\"hidden\":{}}}",
                t.id.0,
                t.op.name(),
                t.total.as_ns(),
                t.critical.json(),
                t.hidden.json()
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The aggregate as `op,scope,component,ns` CSV rows (plus per-op
    /// `meta` rows for count and total).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("op,scope,component,ns\n");
        for (op, agg) in &self.ops {
            let _ = writeln!(out, "{},meta,count,{}", op.name(), agg.count);
            let _ = writeln!(out, "{},meta,total_ns,{}", op.name(), agg.total_ns);
            for c in Component::ALL {
                let _ = writeln!(out, "{},critical,{},{}", op.name(), c.name(), agg.critical.get(c));
            }
            for c in Component::ALL {
                let _ = writeln!(out, "{},hidden,{},{}", op.name(), c.name(), agg.hidden.get(c));
            }
        }
        out
    }
}

impl Default for AttributionEngine {
    fn default() -> Self {
        AttributionEngine::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CausalState;
    use crate::{EventKind, Track, VerbOpcode};

    fn one_access_trace() -> TraceRecord {
        let mut s = CausalState::new(true);
        let mut out = Vec::new();
        s.begin(OpKind::Access);
        let fetch = s.open(Track::App, EventKind::RemoteFetch);
        s.leaf(
            Track::App,
            EventKind::Backoff,
            Nanos::from_ns(40_000),
            &mut out,
        );
        s.leaf(
            Track::Net,
            EventKind::Verb {
                opcode: VerbOpcode::Read,
                bytes: 4096,
            },
            Nanos::from_ns(3_000),
            &mut out,
        );
        s.close(fetch, Nanos::from_ns(43_000), &mut out);
        s.leaf(Track::App, EventKind::FmemFill, Nanos::from_ns(250), &mut out);
        // Overlapped background eviction.
        let evict = s.open(Track::Background, EventKind::Evict);
        s.leaf(
            Track::Background,
            EventKind::SegmentCopy,
            Nanos::from_ns(700),
            &mut out,
        );
        s.close(evict, Nanos::from_ns(900), &mut out);
        s.end(Nanos::from_ns(43_250), &mut out).expect("trace")
    }

    #[test]
    fn components_sum_exactly_to_duration() {
        let rec = one_access_trace();
        let attr = analyze_trace(&rec).expect("analyzable");
        assert!(attr.exact, "critical sum must equal end-to-end latency");
        assert_eq!(attr.critical.total(), attr.total.as_ns());
        assert_eq!(attr.critical.get(Component::RetryBackoff), 40_000);
        assert_eq!(attr.critical.get(Component::Wire), 3_000);
        assert_eq!(attr.critical.get(Component::FMem), 250);
        assert_eq!(attr.critical.get(Component::Queueing), 0);
        // Hidden background work: 700ns copy + 200ns evict residual.
        assert_eq!(attr.hidden.get(Component::Copy), 900);
    }

    #[test]
    fn queueing_absorbs_uncovered_critical_time() {
        let mut s = CausalState::new(true);
        let mut out = Vec::new();
        s.begin(OpKind::Sync);
        s.leaf(
            Track::Net,
            EventKind::Verb {
                opcode: VerbOpcode::Write,
                bytes: 64,
            },
            Nanos::from_ns(1_000),
            &mut out,
        );
        // 500ns of the sync not covered by any leaf.
        let rec = s.end(Nanos::from_ns(1_500), &mut out).expect("trace");
        let attr = analyze_trace(&rec).expect("analyzable");
        assert!(attr.exact);
        assert_eq!(attr.critical.get(Component::Wire), 1_000);
        assert_eq!(attr.critical.get(Component::Queueing), 500);
    }

    #[test]
    fn engine_aggregates_and_ranks_deterministically() {
        let mut eng = AttributionEngine::new(2);
        for _ in 0..3 {
            eng.observe(&one_access_trace());
        }
        assert_eq!(eng.traces(), 3);
        assert_eq!(eng.violations(), 0);
        let acc = &eng.ops()[&OpKind::Access];
        assert_eq!(acc.count, 3);
        assert_eq!(acc.total_ns, 3 * 43_250);
        assert_eq!(acc.critical.total(), acc.total_ns);
        // Equal durations rank by ascending trace id; ring keeps 2.
        assert_eq!(eng.top().len(), 2);
        assert!(eng.top()[0].id <= eng.top()[1].id);
        let json = eng.to_json();
        assert!(json.contains("\"invariant_violations\": 0"));
        assert!(json.contains("\"access\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let csv = eng.to_csv();
        assert!(csv.starts_with("op,scope,component,ns\n"));
        assert!(csv.contains("access,critical,retry_backoff,120000\n"));
    }
}
