//! Telemetry for the Kona simulator: typed span events, a metrics
//! registry and zero-dependency exporters.
//!
//! The paper's evaluation lives and dies on per-component visibility —
//! verbs on the wire, eviction latency breakdowns, fault counts, dirty
//! amplification. This crate is the one place those signals flow through:
//!
//! * [`Recorder`] — where span events go. [`NoopRecorder`] (the default)
//!   discards them for near-zero overhead; [`TraceRecorder`] keeps a ring
//!   buffer for timeline export.
//! * [`Registry`] with [`Counter`] / [`Gauge`] / [`Histogram`] — always-on
//!   metrics. Handles are pre-resolved `Rc` cells, so hot paths never do
//!   string lookups. Histograms are log-bucketed and sized for simulated
//!   [`Nanos`](kona_types::Nanos) latencies (p50/p95/p99/max accessors).
//! * Exporters — [`MetricsSnapshot`] to JSON or CSV, and spans to Chrome
//!   trace-event JSON that <https://ui.perfetto.dev> renders as the
//!   application thread vs the eviction/poller thread on one simulated
//!   time axis.
//!
//! # Examples
//!
//! ```
//! use kona_telemetry::{EventKind, SpanEvent, Telemetry, Track};
//! use kona_types::Nanos;
//!
//! let tel = Telemetry::with_tracing(1024);
//! let fetches = tel.counter("kona.remote_fetches");
//! fetches.inc();
//! tel.record(SpanEvent::new(
//!     Track::App,
//!     Nanos::ZERO,
//!     Nanos::micros(3),
//!     EventKind::RemoteFetch,
//! ));
//! assert_eq!(tel.snapshot().counter("kona.remote_fetches"), Some(1));
//! assert!(tel.chrome_trace().contains("remote_fetch"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod metrics;
mod recorder;

pub use event::{EventKind, SpanEvent, Track, VerbOpcode};
pub use export::{snapshot_to_csv, snapshot_to_json, spans_to_chrome_trace};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramData, HistogramSummary, MetricsDump, MetricsSnapshot,
    Registry,
};
pub use recorder::{NoopRecorder, Recorder, TraceRecorder};

use std::cell::RefCell;
use std::rc::Rc;

struct Inner {
    registry: Registry,
    recorder: Box<dyn Recorder>,
}

/// A cheaply clonable handle bundling the metrics registry with a span
/// recorder.
///
/// Every component of the simulator accepts one of these; clones share
/// state, so the runtime, fabric, FPGA and eviction handler all feed one
/// registry. [`Telemetry::disabled`] (also `Default`) keeps metrics but
/// drops spans.
#[derive(Clone)]
pub struct Telemetry(Rc<RefCell<Inner>>);

impl Telemetry {
    /// Metrics only: spans go to a [`NoopRecorder`].
    pub fn disabled() -> Self {
        Telemetry::with_recorder(Box::new(NoopRecorder))
    }

    /// Metrics plus a [`TraceRecorder`] ring of `capacity` spans.
    pub fn with_tracing(capacity: usize) -> Self {
        Telemetry::with_recorder(Box::new(TraceRecorder::new(capacity)))
    }

    /// Metrics plus a caller-supplied recorder.
    pub fn with_recorder(recorder: Box<dyn Recorder>) -> Self {
        Telemetry(Rc::new(RefCell::new(Inner {
            registry: Registry::new(),
            recorder,
        })))
    }

    /// Whether spans are retained (false under [`NoopRecorder`]).
    pub fn tracing_enabled(&self) -> bool {
        self.0.borrow().recorder.is_enabled()
    }

    /// The counter named `name` (get-or-create).
    pub fn counter(&self, name: &str) -> Counter {
        self.0.borrow_mut().registry.counter(name)
    }

    /// The gauge named `name` (get-or-create).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0.borrow_mut().registry.gauge(name)
    }

    /// The histogram named `name` (get-or-create).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.0.borrow_mut().registry.histogram(name)
    }

    /// Sends one span to the recorder.
    pub fn record(&self, event: SpanEvent) {
        self.0.borrow_mut().recorder.record(event);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.0.borrow().registry.snapshot()
    }

    /// A deep, `Send`-able copy of the registry (full histogram buckets).
    ///
    /// `Telemetry` handles are `Rc`-based and cannot leave their thread;
    /// parallel experiment workers each run with a private `Telemetry` and
    /// return `self.dump()`, which the coordinator [`absorb`]s in input
    /// order so merged metrics match a sequential run exactly.
    ///
    /// [`absorb`]: Telemetry::absorb
    pub fn dump(&self) -> MetricsDump {
        self.0.borrow().registry.dump()
    }

    /// Merges a worker registry dump into this registry (counters add,
    /// gauges take the dump's value, histograms merge bucket-wise).
    pub fn absorb(&self, dump: &MetricsDump) {
        self.0.borrow_mut().registry.absorb(dump);
    }

    /// The retained spans in insertion order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.0.borrow().recorder.events()
    }

    /// Spans dropped by the recorder's capacity limit.
    pub fn dropped_events(&self) -> u64 {
        self.0.borrow().recorder.dropped()
    }

    /// The retained spans as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        spans_to_chrome_trace(&self.events())
    }

    /// The metrics as a JSON document.
    pub fn metrics_json(&self) -> String {
        snapshot_to_json(&self.snapshot())
    }

    /// The metrics as CSV rows.
    pub fn metrics_csv(&self) -> String {
        snapshot_to_csv(&self.snapshot())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("Telemetry")
            .field("tracing_enabled", &inner.recorder.is_enabled())
            .field("retained_events", &inner.recorder.events().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::Nanos;

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::with_tracing(16);
        let other = tel.clone();
        tel.counter("c").inc();
        other.counter("c").add(2);
        assert_eq!(tel.snapshot().counter("c"), Some(3));
        other.record(SpanEvent::new(
            Track::Background,
            Nanos::ZERO,
            Nanos::from_ns(1),
            EventKind::Evict,
        ));
        assert_eq!(tel.events().len(), 1);
        assert!(tel.tracing_enabled());
    }

    #[test]
    fn disabled_drops_spans_keeps_metrics() {
        let tel = Telemetry::disabled();
        assert!(!tel.tracing_enabled());
        tel.record(SpanEvent::new(
            Track::App,
            Nanos::ZERO,
            Nanos::from_ns(1),
            EventKind::Sync,
        ));
        assert!(tel.events().is_empty());
        tel.counter("still_counts").inc();
        assert_eq!(tel.snapshot().counter("still_counts"), Some(1));
        let json = tel.metrics_json();
        assert!(json.contains("still_counts"));
        assert!(tel.metrics_csv().contains("still_counts"));
    }
}
