//! Telemetry for the Kona simulator: causal span traces, a metrics
//! registry and zero-dependency exporters.
//!
//! The paper's evaluation lives and dies on per-component visibility —
//! verbs on the wire, eviction latency breakdowns, fault counts, dirty
//! amplification. This crate is the one place those signals flow through:
//!
//! * [`Recorder`] — where span events go. [`NoopRecorder`] (the default)
//!   discards them for near-zero overhead; [`TraceRecorder`] keeps a ring
//!   buffer for timeline export. Ring overflow is counted in the
//!   `tel.spans_dropped` counter.
//! * Causal tracing — [`Telemetry::trace_begin`]/[`Telemetry::trace_end`]
//!   give each top-level operation a [`TraceId`]; [`Telemetry::span_open`]
//!   /[`Telemetry::span_close`]/[`Telemetry::span_leaf`] build a tree of
//!   parent-linked spans under it (see `trace.rs` for the charge-clock
//!   model). A bounded flight recorder keeps the last N completed traces
//!   and an [`AttributionEngine`] decomposes each into components that
//!   sum exactly to end-to-end latency (see `attribution.rs`).
//! * [`Registry`] with [`Counter`] / [`Gauge`] / [`Histogram`] — always-on
//!   metrics. Handles are pre-resolved `Rc` cells, so hot paths never do
//!   string lookups. Histograms are log-bucketed and sized for simulated
//!   [`Nanos`](kona_types::Nanos) latencies (p50/p95/p99/max accessors).
//! * Exporters — [`MetricsSnapshot`] to JSON or CSV, and spans to Chrome
//!   trace-event JSON that <https://ui.perfetto.dev> renders as the
//!   application / eviction-poller / network threads on one simulated
//!   time axis, with parent/trace ids in each event's args.
//!
//! # Examples
//!
//! ```
//! use kona_telemetry::{EventKind, OpKind, Telemetry, Track, VerbOpcode};
//! use kona_types::Nanos;
//!
//! let tel = Telemetry::with_causal(1024, 8);
//! tel.trace_begin(OpKind::Access);
//! let fetch = tel.span_open(Track::App, EventKind::RemoteFetch);
//! tel.span_leaf(
//!     Track::Net,
//!     EventKind::Verb { opcode: VerbOpcode::Read, bytes: 4096 },
//!     Nanos::micros(3),
//! );
//! tel.span_close(fetch, Nanos::micros(3));
//! tel.trace_end(Nanos::micros(3));
//! let report = tel.attribution().expect("engine installed");
//! assert_eq!(report.violations(), 0);
//! assert!(tel.chrome_trace().contains("remote_fetch"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod event;
mod export;
mod metrics;
mod monitor;
mod profile;
mod recorder;
mod timeseries;
mod trace;

pub use attribution::{
    analyze_trace, AttributionEngine, Component, ComponentVec, OpAttribution, TraceAttribution,
};
pub use event::{
    merge_span_streams, EventKind, FaultKind, SpanEvent, SpanId, Track, TraceId, VerbOpcode,
};
pub use export::{
    snapshot_to_csv, snapshot_to_json, spans_to_chrome_trace, spans_to_chrome_trace_with_series,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramData, HistogramSummary, MetricsDump, MetricsSnapshot,
    Registry,
};
pub use monitor::{
    Alert, AlertTransition, HealthMonitor, HealthReport, Rule, RuleKind, RuleOutcome, Selector,
    SeriesField,
};
pub use profile::{
    host_profile_start, host_profile_stop, host_scope, DiffRow, HostScope, HostScopeStats,
    LinkQueue, NodeQueue, PathStats, Profile, ProfileDiff, QueueStats,
};
pub use recorder::{NoopRecorder, Recorder, TraceRecorder};
pub use timeseries::{SeriesData, SeriesWindow, DEFAULT_WINDOW_NS};
pub use trace::{traces_to_json, OpKind, SpanToken, TraceRecord};

use kona_types::Nanos;
use std::cell::RefCell;
use std::rc::Rc;
use timeseries::TimeSeriesCollector;
use trace::CausalState;

/// Name of the counter tracking spans lost to recorder-ring overflow.
pub const SPANS_DROPPED: &str = "tel.spans_dropped";

/// Name of the counter tracking health-monitor alert firings.
pub const ALERTS_FIRED: &str = "mon.alerts_fired";

/// Name of the counter tracking health-monitor alert resolutions.
pub const ALERTS_RESOLVED: &str = "mon.alerts_resolved";

struct Inner {
    registry: Registry,
    recorder: Box<dyn Recorder>,
    causal: CausalState,
    engine: Option<AttributionEngine>,
    spans_dropped: Counter,
    timeseries: Option<TimeSeriesCollector>,
    monitor: Option<HealthMonitor>,
}

impl Inner {
    /// Routes one span to the recorder, charging ring overflow to the
    /// `tel.spans_dropped` counter so drops are visible in snapshots.
    fn record_one(&mut self, event: SpanEvent) {
        let before = self.recorder.dropped();
        self.recorder.record(event);
        let after = self.recorder.dropped();
        if after > before {
            self.spans_dropped.add(after - before);
        }
    }

    /// Feeds freshly closed windows to the monitor, recording every alert
    /// transition as a zero-width span at its window's closing boundary.
    /// The `mon.alerts_*` counters are bumped *after* the collector
    /// re-baselined, so they land in the next window's delta and never
    /// perturb the window that caused them.
    fn handle_closed(&mut self, closed: &[SeriesWindow], window_ns: u64) {
        let Some(monitor) = self.monitor.as_mut() else {
            return;
        };
        let mut transitions = Vec::new();
        for w in closed {
            transitions.extend(monitor.push(w));
        }
        for t in transitions {
            let at = Nanos::from_ns((t.window + 1).saturating_mul(window_ns));
            let rule = t.rule.min(u16::MAX as usize) as u16;
            let kind = if t.firing {
                EventKind::AlertFiring(rule)
            } else {
                EventKind::AlertResolved(rule)
            };
            self.record_one(SpanEvent::new(Track::Cluster, at, Nanos::ZERO, kind));
            let name = if t.firing { ALERTS_FIRED } else { ALERTS_RESOLVED };
            self.registry.counter(name).inc();
        }
    }

    /// Advances the time-series collector to `now` and runs the monitor
    /// over any windows that closed.
    fn observe_time(&mut self, now: Nanos) {
        let Some(ts) = self.timeseries.as_mut() else {
            return;
        };
        let before = ts.len();
        ts.observe(now, &self.registry);
        let after = ts.len();
        if after != before {
            let closed: Vec<SeriesWindow> = ts.windows()[before..after].to_vec();
            let window_ns = ts.window_ns();
            self.handle_closed(&closed, window_ns);
        }
    }

    /// Closes the tail window (and runs the monitor over it) so series
    /// and report include every recorded delta.
    fn flush_timeseries(&mut self) {
        let Some(ts) = self.timeseries.as_mut() else {
            return;
        };
        let before = ts.len();
        ts.flush(&self.registry);
        let after = ts.len();
        if after != before {
            let closed: Vec<SeriesWindow> = ts.windows()[before..after].to_vec();
            let window_ns = ts.window_ns();
            self.handle_closed(&closed, window_ns);
        }
    }
}

/// A cheaply clonable handle bundling the metrics registry with a span
/// recorder and the causal-tracing state.
///
/// Every component of the simulator accepts one of these; clones share
/// state, so the runtime, fabric, FPGA and eviction handler all feed one
/// registry and one trace tree. [`Telemetry::disabled`] (also `Default`)
/// keeps metrics but drops spans.
#[derive(Clone)]
pub struct Telemetry(Rc<RefCell<Inner>>);

impl Telemetry {
    /// Metrics only: spans go to a [`NoopRecorder`].
    pub fn disabled() -> Self {
        Telemetry::with_recorder(Box::new(NoopRecorder))
    }

    /// Metrics plus a [`TraceRecorder`] ring of `capacity` spans.
    pub fn with_tracing(capacity: usize) -> Self {
        Telemetry::with_recorder(Box::new(TraceRecorder::new(capacity)))
    }

    /// Full causal setup: a span ring of `capacity` events (0 disables
    /// span retention while keeping causal tracing on), a flight recorder
    /// keeping the last `flight` completed traces, and an
    /// [`AttributionEngine`] decomposing every trace as it completes.
    pub fn with_causal(capacity: usize, flight: usize) -> Self {
        let tel = if capacity == 0 {
            Telemetry::with_recorder(Box::new(NoopRecorder))
        } else {
            Telemetry::with_tracing(capacity)
        };
        {
            let mut inner = tel.0.borrow_mut();
            inner.causal.enabled = true;
            inner.causal.set_flight_capacity(flight);
            inner.engine = Some(AttributionEngine::default());
        }
        tel
    }

    /// Metrics plus a caller-supplied recorder.
    pub fn with_recorder(recorder: Box<dyn Recorder>) -> Self {
        let mut registry = Registry::new();
        // Eagerly resolved so every snapshot reports the drop count,
        // zero included.
        let spans_dropped = registry.counter(SPANS_DROPPED);
        let enabled = recorder.is_enabled();
        Telemetry(Rc::new(RefCell::new(Inner {
            registry,
            recorder,
            causal: CausalState::new(enabled),
            engine: None,
            spans_dropped,
            timeseries: None,
            monitor: None,
        })))
    }

    /// Starts collecting windowed registry deltas on `window_ns`-wide
    /// simulated-time windows (see [`SeriesData`]). Replaces any existing
    /// collector.
    pub fn enable_timeseries(&self, window_ns: u64) {
        self.0.borrow_mut().timeseries = Some(TimeSeriesCollector::new(window_ns));
    }

    /// Whether a time-series collector is installed.
    pub fn timeseries_enabled(&self) -> bool {
        self.0.borrow().timeseries.is_some()
    }

    /// Installs a [`HealthMonitor`] evaluating `rules` on every window
    /// close. Enables time-series collection with
    /// [`DEFAULT_WINDOW_NS`]-wide windows if none is active yet.
    pub fn install_monitor(&self, rules: Vec<Rule>) {
        let mut inner = self.0.borrow_mut();
        if inner.timeseries.is_none() {
            inner.timeseries = Some(TimeSeriesCollector::new(DEFAULT_WINDOW_NS));
        }
        inner.monitor = Some(HealthMonitor::new(rules));
    }

    /// Notes that simulated time reached `now`. The runtimes call this on
    /// every clock advance; when a window boundary is crossed the
    /// registry delta is snapshotted and any installed monitor runs.
    /// Near-free when no collector is installed, and non-monotone
    /// observations from mixed clock sources fold through `max`.
    pub fn observe_time(&self, now: Nanos) {
        self.0.borrow_mut().observe_time(now);
    }

    /// The collected series, tail window included, or `None` when
    /// time-series collection is off. Collection continues afterwards;
    /// later activity folds into the (re-opened) final window.
    pub fn series(&self) -> Option<SeriesData> {
        let mut inner = self.0.borrow_mut();
        inner.flush_timeseries();
        inner.timeseries.as_ref().map(|ts| ts.data().clone())
    }

    /// The monitor's end-of-run report (tail window flushed first), or
    /// `None` when no monitor is installed.
    pub fn health_report(&self) -> Option<HealthReport> {
        let mut inner = self.0.borrow_mut();
        inner.flush_timeseries();
        let window_ns = inner.timeseries.as_ref().map_or(0, |ts| ts.window_ns());
        inner.monitor.as_ref().map(|m| m.report(window_ns))
    }

    /// The counter named `{prefix}{id}.{suffix}` via the registry's name
    /// cache — hot re-registration never formats or allocates.
    pub fn counter_interned(&self, prefix: &'static str, id: u32, suffix: &'static str) -> Counter {
        self.0.borrow_mut().registry.counter_interned(prefix, id, suffix)
    }

    /// The gauge named `{prefix}{id}.{suffix}` via the registry's name
    /// cache — hot re-registration never formats or allocates.
    pub fn gauge_interned(&self, prefix: &'static str, id: u32, suffix: &'static str) -> Gauge {
        self.0.borrow_mut().registry.gauge_interned(prefix, id, suffix)
    }

    /// The histogram named `{prefix}{id}.{suffix}` via the registry's name
    /// cache, for per-instance metrics on hot paths.
    pub fn histogram_interned(
        &self,
        prefix: &'static str,
        id: u32,
        suffix: &'static str,
    ) -> Histogram {
        self.0.borrow_mut().registry.histogram_interned(prefix, id, suffix)
    }

    /// Whether spans are retained (false under [`NoopRecorder`]).
    pub fn tracing_enabled(&self) -> bool {
        self.0.borrow().recorder.is_enabled()
    }

    /// Whether causal span calls do anything (recorder enabled, flight
    /// recorder active or attribution engine installed).
    pub fn causal_enabled(&self) -> bool {
        self.0.borrow().causal.enabled
    }

    /// The counter named `name` (get-or-create).
    pub fn counter(&self, name: &str) -> Counter {
        self.0.borrow_mut().registry.counter(name)
    }

    /// The gauge named `name` (get-or-create).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0.borrow_mut().registry.gauge(name)
    }

    /// The histogram named `name` (get-or-create).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.0.borrow_mut().registry.histogram(name)
    }

    /// Sends one causally unlinked span to the recorder (legacy path,
    /// still used by the VM baselines).
    pub fn record(&self, event: SpanEvent) {
        self.0.borrow_mut().record_one(event);
    }

    /// Opens a trace for one top-level operation. Returns its id
    /// ([`TraceId::NONE`] when causal tracing is off). Nested begins fold
    /// into plain spans, closed by the matching [`trace_end`].
    ///
    /// [`trace_end`]: Telemetry::trace_end
    pub fn trace_begin(&self, op: OpKind) -> TraceId {
        self.0.borrow_mut().causal.begin(op)
    }

    /// Relabels the current trace's operation kind (an access that
    /// escalates into MCE recovery is retagged [`OpKind::Recovery`]).
    pub fn retag_trace(&self, op: OpKind) {
        self.0.borrow_mut().causal.retag(op);
    }

    /// Closes the current trace with its end-to-end latency: dangling
    /// spans are force-closed, the completed trace goes to the recorder,
    /// the flight ring and the attribution engine.
    pub fn trace_end(&self, elapsed: Nanos) {
        let mut inner = self.0.borrow_mut();
        let mut out = Vec::new();
        let record = inner.causal.end(elapsed, &mut out);
        for ev in out {
            inner.record_one(ev);
        }
        if let Some(record) = record {
            for &ev in &record.spans {
                inner.record_one(ev);
            }
            if let Some(engine) = &mut inner.engine {
                engine.observe(&record);
            }
        }
    }

    /// Opens a span on `track` under the current span (or as a top-level
    /// span when no trace is active). Close it with [`span_close`].
    ///
    /// [`span_close`]: Telemetry::span_close
    pub fn span_open(&self, track: Track, kind: EventKind) -> SpanToken {
        self.0.borrow_mut().causal.open(track, kind)
    }

    /// Closes `token` with the reported duration; the recorded duration
    /// is `max(duration, time covered by same-charge children)` and the
    /// charge clock snaps to the span's end.
    pub fn span_close(&self, token: SpanToken, duration: Nanos) {
        let mut inner = self.0.borrow_mut();
        let mut out = Vec::new();
        inner.causal.close(token, duration, &mut out);
        for ev in out {
            inner.record_one(ev);
        }
    }

    /// Records a leaf span of `duration` on `track`, advancing the
    /// charge clock.
    pub fn span_leaf(&self, track: Track, kind: EventKind, duration: Nanos) {
        let mut inner = self.0.borrow_mut();
        let mut out = Vec::new();
        inner.causal.leaf(track, kind, duration, &mut out);
        for ev in out {
            inner.record_one(ev);
        }
    }

    /// Records a leaf on the display track of whichever simulated thread
    /// is currently paying (App at top level) — used for retry backoff.
    pub fn span_leaf_inherit(&self, kind: EventKind, duration: Nanos) {
        let track = self.0.borrow().causal.inherit_track();
        self.span_leaf(track, kind, duration);
    }

    /// Records a zero-width instant marker (fault, MCE, FPGA decision).
    pub fn instant(&self, track: Track, kind: EventKind) {
        let mut inner = self.0.borrow_mut();
        let mut out = Vec::new();
        inner.causal.instant(track, kind, &mut out);
        for ev in out {
            inner.record_one(ev);
        }
    }

    /// Keeps the last `capacity` completed traces in the flight ring
    /// (enables causal tracing when `capacity > 0`).
    pub fn set_flight_capacity(&self, capacity: usize) {
        self.0.borrow_mut().causal.set_flight_capacity(capacity);
    }

    /// Offsets newly allocated trace ids by `base` so parallel workers
    /// produce globally unique, deterministic ids (e.g. `index << 32`).
    pub fn set_trace_id_base(&self, base: u64) {
        self.0.borrow_mut().causal.set_trace_id_base(base);
    }

    /// The flight recorder's retained traces, oldest first.
    pub fn flight(&self) -> Vec<TraceRecord> {
        self.0.borrow().causal.flight().to_vec()
    }

    /// Completed traces evicted from the flight ring.
    pub fn flight_dropped(&self) -> u64 {
        self.0.borrow().causal.flight_dropped()
    }

    /// The flight recorder contents as JSON (the black-box dump format).
    pub fn flight_json(&self) -> String {
        traces_to_json(self.0.borrow().causal.flight())
    }

    /// A snapshot of the attribution engine, if one is installed
    /// ([`Telemetry::with_causal`] installs it).
    pub fn attribution(&self) -> Option<AttributionEngine> {
        self.0.borrow().engine.clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.0.borrow().registry.snapshot()
    }

    /// A deep, `Send`-able copy of the registry (full histogram buckets).
    ///
    /// `Telemetry` handles are `Rc`-based and cannot leave their thread;
    /// parallel experiment workers each run with a private `Telemetry` and
    /// return `self.dump()`, which the coordinator [`absorb`]s in input
    /// order so merged metrics match a sequential run exactly.
    ///
    /// [`absorb`]: Telemetry::absorb
    pub fn dump(&self) -> MetricsDump {
        self.0.borrow().registry.dump()
    }

    /// Merges a worker registry dump into this registry (counters add,
    /// gauges take the dump's value, histograms merge bucket-wise).
    pub fn absorb(&self, dump: &MetricsDump) {
        self.0.borrow_mut().registry.absorb(dump);
    }

    /// The retained spans in insertion order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.0.borrow().recorder.events()
    }

    /// Spans dropped by the recorder's capacity limit.
    pub fn dropped_events(&self) -> u64 {
        self.0.borrow().recorder.dropped()
    }

    /// The retained spans as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        spans_to_chrome_trace(&self.events())
    }

    /// The metrics as a JSON document.
    pub fn metrics_json(&self) -> String {
        snapshot_to_json(&self.snapshot())
    }

    /// The metrics as CSV rows.
    pub fn metrics_csv(&self) -> String {
        snapshot_to_csv(&self.snapshot())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("Telemetry")
            .field("tracing_enabled", &inner.recorder.is_enabled())
            .field("causal_enabled", &inner.causal.enabled)
            .field("retained_events", &inner.recorder.events().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::with_tracing(16);
        let other = tel.clone();
        tel.counter("c").inc();
        other.counter("c").add(2);
        assert_eq!(tel.snapshot().counter("c"), Some(3));
        other.record(SpanEvent::new(
            Track::Background,
            Nanos::ZERO,
            Nanos::from_ns(1),
            EventKind::Evict,
        ));
        assert_eq!(tel.events().len(), 1);
        assert!(tel.tracing_enabled());
        assert!(tel.causal_enabled());
    }

    #[test]
    fn disabled_drops_spans_keeps_metrics() {
        let tel = Telemetry::disabled();
        assert!(!tel.tracing_enabled());
        assert!(!tel.causal_enabled());
        tel.record(SpanEvent::new(
            Track::App,
            Nanos::ZERO,
            Nanos::from_ns(1),
            EventKind::Sync,
        ));
        assert!(tel.events().is_empty());
        tel.counter("still_counts").inc();
        assert_eq!(tel.snapshot().counter("still_counts"), Some(1));
        let json = tel.metrics_json();
        assert!(json.contains("still_counts"));
        assert!(tel.metrics_csv().contains("still_counts"));
    }

    #[test]
    fn ring_overflow_feeds_spans_dropped_counter() {
        let tel = Telemetry::with_tracing(2);
        assert_eq!(tel.snapshot().counter(SPANS_DROPPED), Some(0));
        for i in 0..5 {
            tel.record(SpanEvent::new(
                Track::App,
                Nanos::from_ns(i),
                Nanos::from_ns(1),
                EventKind::Sync,
            ));
        }
        assert_eq!(tel.dropped_events(), 3);
        assert_eq!(tel.snapshot().counter(SPANS_DROPPED), Some(3));
        // The causal path charges the same counter.
        tel.span_leaf(Track::App, EventKind::LocalHit, Nanos::from_ns(1));
        assert_eq!(tel.snapshot().counter(SPANS_DROPPED), Some(4));
    }

    #[test]
    fn causal_trace_reaches_recorder_flight_and_engine() {
        let tel = Telemetry::with_causal(64, 4);
        tel.trace_begin(OpKind::Access);
        let fetch = tel.span_open(Track::App, EventKind::RemoteFetch);
        tel.span_leaf(
            Track::Net,
            EventKind::Verb {
                opcode: VerbOpcode::Read,
                bytes: 4096,
            },
            Nanos::from_ns(3_000),
        );
        tel.span_close(fetch, Nanos::from_ns(3_000));
        tel.trace_end(Nanos::from_ns(3_200));

        let events = tel.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.trace.is_some()));
        let flight = tel.flight();
        assert_eq!(flight.len(), 1);
        assert_eq!(flight[0].duration(), Nanos::from_ns(3_200));
        let engine = tel.attribution().expect("engine");
        assert_eq!(engine.traces(), 1);
        assert_eq!(engine.violations(), 0);
        let acc = &engine.ops()[&OpKind::Access];
        assert_eq!(acc.critical.total(), 3_200);
    }

    #[test]
    fn timeseries_and_monitor_flow_end_to_end() {
        let tel = Telemetry::with_tracing(64);
        assert!(tel.series().is_none(), "off by default");
        tel.enable_timeseries(100);
        assert!(tel.timeseries_enabled());
        tel.install_monitor(vec![Rule::above("busy", "ops", 10.0)]);

        tel.counter("ops").add(20);
        tel.observe_time(Nanos::from_ns(50));
        tel.observe_time(Nanos::from_ns(150)); // closes window 0 → fires
        tel.counter("ops").add(1);
        tel.observe_time(Nanos::from_ns(250)); // closes window 1 → resolves

        let series = tel.series().expect("collector installed");
        assert_eq!(series.counter_total("ops"), 21);
        let report = tel.health_report().expect("monitor installed");
        assert_eq!(report.alerts_fired(), 1);
        assert_eq!(report.alerts_resolved(), 1);
        assert_eq!(report.alerts[0].worst_window, 0);
        assert!(!report.slo_breached());

        // Alert transitions surface as instants on the cluster track and
        // as mon.* counters.
        let events = tel.events();
        let firing: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AlertFiring(_)))
            .collect();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].track, Track::Cluster);
        assert_eq!(firing[0].start, Nanos::from_ns(100));
        assert!(firing[0].is_instant());
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::AlertResolved(_))));
        assert_eq!(tel.snapshot().counter(ALERTS_FIRED), Some(1));
        assert_eq!(tel.snapshot().counter(ALERTS_RESOLVED), Some(1));
    }

    #[test]
    fn series_conserves_counter_totals_under_flush() {
        let tel = Telemetry::disabled();
        tel.enable_timeseries(1_000);
        for i in 0..10u64 {
            tel.counter("ops").add(i);
            tel.histogram("lat").record(100 * (i + 1));
            tel.observe_time(Nanos::from_ns(i * 700));
        }
        let series = tel.series().expect("enabled");
        let snap = tel.snapshot();
        assert_eq!(series.counter_total("ops"), snap.counter("ops").unwrap());
        let hist_count: u64 = series
            .windows
            .iter()
            .filter_map(|w| w.histograms.get("lat"))
            .map(HistogramData::count)
            .sum();
        assert_eq!(hist_count, snap.histogram("lat").unwrap().count);
    }

    #[test]
    fn with_causal_zero_ring_keeps_flight_only() {
        let tel = Telemetry::with_causal(0, 2);
        assert!(!tel.tracing_enabled());
        assert!(tel.causal_enabled());
        tel.trace_begin(OpKind::Sync);
        tel.trace_end(Nanos::from_ns(10));
        assert!(tel.events().is_empty(), "no span ring");
        assert_eq!(tel.flight().len(), 1);
        assert_eq!(tel.snapshot().counter(SPANS_DROPPED), Some(0));
    }
}
