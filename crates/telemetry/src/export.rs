//! Hand-rolled exporters: metrics to JSON/CSV, spans to Chrome trace JSON.
//!
//! The workspace builds with no external dependencies, so serialization
//! is plain string formatting. The Chrome trace-event output loads in
//! `chrome://tracing` and <https://ui.perfetto.dev>: one process with two
//! threads — the application and the eviction/poller machinery — on a
//! shared simulated-time axis.

use crate::event::{EventKind, SpanEvent, Track};
use crate::metrics::MetricsSnapshot;
use crate::timeseries::SeriesData;
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become 0).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Serializes a snapshot as a JSON object with `counters`, `gauges` and
/// `histograms` maps.
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", json_escape(name), json_f64(*v));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json_escape(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            json_f64(h.mean),
            h.p50,
            h.p95,
            h.p99
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Serializes a snapshot as `kind,name,field,value` CSV rows.
pub fn snapshot_to_csv(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("kind,name,field,value\n");
    let quote = |name: &str| {
        if name.contains(',') || name.contains('"') {
            format!("\"{}\"", name.replace('"', "\"\""))
        } else {
            name.to_string()
        }
    };
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "counter,{},value,{v}", quote(name));
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "gauge,{},value,{}", quote(name), json_f64(*v));
    }
    for (name, h) in &snap.histograms {
        let name = quote(name);
        let _ = writeln!(out, "histogram,{name},count,{}", h.count);
        let _ = writeln!(out, "histogram,{name},sum,{}", h.sum);
        let _ = writeln!(out, "histogram,{name},min,{}", h.min);
        let _ = writeln!(out, "histogram,{name},max,{}", h.max);
        let _ = writeln!(out, "histogram,{name},mean,{}", json_f64(h.mean));
        let _ = writeln!(out, "histogram,{name},p50,{}", h.p50);
        let _ = writeln!(out, "histogram,{name},p95,{}", h.p95);
        let _ = writeln!(out, "histogram,{name},p99,{}", h.p99);
    }
    out
}

/// Chrome-trace thread id for a track.
fn tid(track: Track) -> u32 {
    match track {
        Track::App => 1,
        Track::Background => 2,
        Track::Net => 3,
        Track::Cluster => 4,
    }
}

/// Chrome-trace category for a track.
fn cat(track: Track) -> &'static str {
    match track {
        Track::App => "app",
        Track::Background => "background",
        Track::Net => "net",
        Track::Cluster => "cluster",
    }
}

/// Renders spans as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` open directly).
///
/// Each span becomes a `ph:"X"` complete event (instant markers such as
/// injected faults become thread-scoped `ph:"i"` events); timestamps are
/// simulated nanoseconds expressed in the format's microsecond unit.
/// Thread-name metadata maps [`Track::App`], [`Track::Background`] and
/// [`Track::Net`] onto three named rows of one `kona-sim` process, and
/// causally linked spans carry their trace/span/parent ids in `args`.
pub fn spans_to_chrome_trace(events: &[SpanEvent]) -> String {
    spans_to_chrome_trace_with_series(events, None)
}

/// Like [`spans_to_chrome_trace`], but additionally renders a windowed
/// [`SeriesData`] as Perfetto counter tracks (`ph:"C"` events) on the
/// same simulated-time axis: one track per counter/gauge, and
/// `p50`/`p95`/`p99` tracks per histogram, each sample placed at its
/// window's start.
pub fn spans_to_chrome_trace_with_series(
    events: &[SpanEvent],
    series: Option<&SeriesData>,
) -> String {
    let counters_present = series.is_some_and(|s| !s.windows.is_empty());
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"kona-sim\"}},\n",
    );
    for track in [Track::App, Track::Background, Track::Net, Track::Cluster] {
        let _ = writeln!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}},",
            tid(track),
            json_escape(track.name())
        );
    }
    for (i, ev) in events.iter().enumerate() {
        let ts = ev.start.as_ns() as f64 / 1_000.0;
        let dur = ev.duration.as_ns() as f64 / 1_000.0;
        let mut fields = Vec::new();
        match ev.kind {
            EventKind::Verb { opcode, bytes } => {
                fields.push(format!("\"opcode\":\"{}\",\"bytes\":{bytes}", opcode.name()));
            }
            EventKind::Fault(f) => fields.push(format!("\"fault\":\"{}\"", f.name())),
            EventKind::AlertFiring(rule) | EventKind::AlertResolved(rule) => {
                fields.push(format!("\"rule\":{rule}"));
            }
            _ => {}
        }
        if ev.trace.is_some() {
            fields.push(format!("\"trace\":{}", ev.trace.0));
        }
        if ev.span.is_some() {
            fields.push(format!("\"span\":{},\"parent\":{}", ev.span.0, ev.parent.0));
        }
        let args = if fields.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{{}}}", fields.join(","))
        };
        let sep = if i + 1 == events.len() && !counters_present {
            ""
        } else {
            ","
        };
        if ev.is_instant() {
            let _ = writeln!(
                out,
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"name\":\"{}\",\"cat\":\"{}\"{args}}}{sep}",
                tid(ev.track),
                json_f64(ts),
                ev.kind.name(),
                cat(ev.track),
            );
        } else {
            let _ = writeln!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"cat\":\"{}\"{args}}}{sep}",
                tid(ev.track),
                json_f64(ts),
                json_f64(dur),
                ev.kind.name(),
                cat(ev.track),
            );
        }
    }
    if counters_present {
        let series = series.expect("counters_present implies series");
        let mut lines: Vec<String> = Vec::new();
        let mut counter = |name: &str, ts: f64, value: String| {
            lines.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"ts\":{},\"name\":\"{}\",\
                 \"args\":{{\"value\":{value}}}}}",
                json_f64(ts),
                json_escape(name),
            ));
        };
        for w in &series.windows {
            let ts = w.start_ns(series.window_ns) as f64 / 1_000.0;
            for (name, v) in &w.counters {
                counter(name, ts, v.to_string());
            }
            for (name, v) in &w.gauges {
                counter(name, ts, json_f64(*v));
            }
            for (name, data) in &w.histograms {
                for (field, v) in [
                    ("p50", data.p50()),
                    ("p95", data.p95()),
                    ("p99", data.p99()),
                ] {
                    counter(&format!("{name}.{field}"), ts, v.to_string());
                }
            }
        }
        out.push_str(&lines.join(",\n"));
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VerbOpcode;
    use crate::metrics::Registry;
    use kona_types::Nanos;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut reg = Registry::new();
        reg.counter("kona.local_hits").add(5);
        reg.gauge("fmem.dirty_compaction").set(0.25);
        let h = reg.histogram("net.verb_ns");
        h.record(3000);
        h.record(5000);
        reg.snapshot()
    }

    #[test]
    fn json_has_all_sections() {
        let s = snapshot_to_json(&sample_snapshot());
        assert!(s.contains("\"counters\""));
        assert!(s.contains("\"kona.local_hits\": 5"));
        assert!(s.contains("\"fmem.dirty_compaction\": 0.25"));
        assert!(s.contains("\"net.verb_ns\""));
        assert!(s.contains("\"count\": 2"));
        // Balanced braces — cheap structural sanity check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn csv_rows() {
        let s = snapshot_to_csv(&sample_snapshot());
        assert!(s.starts_with("kind,name,field,value\n"));
        assert!(s.contains("counter,kona.local_hits,value,5\n"));
        assert!(s.contains("gauge,fmem.dirty_compaction,value,0.25\n"));
        assert!(s.contains("histogram,net.verb_ns,count,2\n"));
        assert!(s.contains("histogram,net.verb_ns,max,5000\n"));
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[test]
    fn chrome_trace_two_tracks() {
        let events = vec![
            SpanEvent::new(
                Track::App,
                Nanos::from_ns(1_000),
                Nanos::from_ns(500),
                EventKind::RemoteFetch,
            ),
            SpanEvent::new(
                Track::Background,
                Nanos::from_ns(1_500),
                Nanos::from_ns(2_000),
                EventKind::Verb {
                    opcode: VerbOpcode::Write,
                    bytes: 64,
                },
            ),
        ];
        let s = spans_to_chrome_trace(&events);
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"name\":\"application\""));
        assert!(s.contains("\"name\":\"eviction/poller\""));
        assert!(s.contains("\"name\":\"network\""));
        assert!(s.contains("\"name\":\"remote_fetch\""));
        assert!(s.contains("\"tid\":2"));
        assert!(s.contains("\"opcode\":\"write\",\"bytes\":64"));
        assert!(s.contains("\"ts\":1,\"dur\":0.5"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn fault_instants_render_on_the_net_track() {
        use crate::event::FaultKind;
        let events = vec![SpanEvent::new(
            Track::Net,
            Nanos::from_ns(2_000),
            Nanos::ZERO,
            EventKind::Fault(FaultKind::TimedOut),
        )];
        let s = spans_to_chrome_trace(&events);
        assert!(s.contains("\"ph\":\"i\",\"s\":\"t\""), "instant phase");
        assert!(s.contains("\"tid\":3"), "net thread");
        assert!(s.contains("\"fault\":\"timeout\""));
        assert!(!s.contains("\"dur\""), "instants carry no duration");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn counter_tracks_render_alongside_spans() {
        use crate::timeseries::{SeriesData, SeriesWindow};
        let events = vec![SpanEvent::new(
            Track::App,
            Nanos::from_ns(1_000),
            Nanos::from_ns(500),
            EventKind::RemoteFetch,
        )];
        let mut series = SeriesData::new(1_000);
        let mut w = SeriesWindow::empty(2);
        w.counters.insert("net.posts".to_string(), 7);
        w.gauges.insert("depth".to_string(), 1.5);
        let mut h = crate::metrics::HistogramData::new();
        h.record(4_000);
        w.histograms.insert("kona.fetch_ns".to_string(), h);
        series.windows.push(w);
        let s = spans_to_chrome_trace_with_series(&events, Some(&series));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"name\":\"net.posts\",\"args\":{\"value\":7}"));
        assert!(s.contains("\"name\":\"depth\",\"args\":{\"value\":1.5}"));
        assert!(s.contains("\"name\":\"kona.fetch_ns.p99\""));
        // Counter samples sit at the window start (2µs for window 2).
        assert!(s.contains("\"ts\":2,\"name\":\"net.posts\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        // Alert instants carry their rule index.
        let alert = SpanEvent::new(
            Track::Cluster,
            Nanos::from_ns(5_000),
            Nanos::ZERO,
            EventKind::AlertFiring(2),
        );
        let s = spans_to_chrome_trace(&[alert]);
        assert!(s.contains("\"name\":\"alert_firing\""));
        assert!(s.contains("\"rule\":2"));
        assert!(s.contains("\"ph\":\"i\""));
    }

    #[test]
    fn causal_ids_appear_in_args() {
        use crate::event::{SpanId, TraceId};
        let mut ev = SpanEvent::new(
            Track::App,
            Nanos::from_ns(10),
            Nanos::from_ns(5),
            EventKind::RemoteFetch,
        );
        ev.trace = TraceId(9);
        ev.span = SpanId(3);
        ev.parent = SpanId(1);
        let s = spans_to_chrome_trace(&[ev]);
        assert!(s.contains("\"trace\":9"));
        assert!(s.contains("\"span\":3,\"parent\":1"));
    }

    #[test]
    fn chrome_trace_handles_hostile_names_and_stays_monotone() {
        // Escaping: nothing in our static names needs it, but args built
        // from opcode/fault names must survive a JSON parse; exercise the
        // escaper on hostile input directly plus a structural check.
        assert_eq!(json_escape("a\u{0007}b"), "a\\u0007b");
        assert_eq!(json_escape("tab\tquote\""), "tab\\tquote\\\"");
        let events: Vec<SpanEvent> = (0..4)
            .map(|i| {
                SpanEvent::new(
                    Track::App,
                    Nanos::from_ns(i * 100),
                    Nanos::from_ns(50),
                    EventKind::Sync,
                )
            })
            .collect();
        let s = spans_to_chrome_trace(&events);
        // Timestamps must be emitted in non-decreasing order per track so
        // Perfetto renders one monotone lane.
        let mut last = f64::MIN;
        for line in s.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
            let ts = line
                .split("\"ts\":")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .and_then(|v| v.parse::<f64>().ok())
                .expect("ts field");
            assert!(ts >= last, "timestamps regressed: {ts} < {last}");
            last = ts;
        }
    }
}
