//! Deterministic simulated-time profiling, host wall-clock scopes and
//! queueing/occupancy folding.
//!
//! [`Profile`] folds one telemetry's span stream into a weighted
//! call-path tree: for every `(charge track, span-name path)` it keeps
//! the call count plus *total* and *self* simulated nanoseconds, where
//! self time is the span's duration minus the time covered by its
//! same-charge children. The fold runs per span stream (one
//! [`Telemetry`](crate::Telemetry) instance), so span ids resolve
//! unambiguously; per-shard profiles [`merge`](Profile::merge) by path
//! key in shard order, which is associative and therefore byte-identical
//! at any worker count — the same discipline the sharded engine applies
//! to counters and series.
//!
//! The charge-clock invariant from `trace.rs` (a parent's recorded
//! duration covers its same-charge children, which never overlap) makes
//! the fold *exact*: per charge track, the self times of every path sum
//! to the total duration of that track's root spans. Violations of that
//! invariant are counted, never papered over, and the `fig_profile`
//! binary gates on the count staying zero.
//!
//! Two export formats ship: collapsed stacks (`frame;frame;... value`,
//! the format `flamegraph.pl` and inferno consume directly, weighted by
//! self nanoseconds) and a line-oriented JSON document that
//! [`Profile::from_json`] reads back, so [`ProfileDiff`] can compare a
//! committed baseline against a fresh run and name the regressed path.
//!
//! [`HostScope`] is the wall-clock side: coarse RAII scopes over the hot
//! paths the bench gate watches (eviction pack, shipment apply,
//! compaction, shard merge). Scopes are process-global, atomically
//! gated, and near-free while disabled; their numbers are *host* time
//! and therefore nondeterministic — they are reported on stderr or in
//! bench reports, never in byte-compared artifacts.

use crate::event::{SpanEvent, Track};
use crate::timeseries::SeriesData;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Weight of one call path in a [`Profile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Spans folded into this path.
    pub count: u64,
    /// Simulated nanoseconds spent in this path, children included.
    pub total_ns: u64,
    /// Simulated nanoseconds spent in this path itself (total minus the
    /// time covered by same-charge children).
    pub self_ns: u64,
}

/// A deterministic simulated-time profile: weighted call paths keyed by
/// `track;frame;frame;...` (the track is the *charge* track — App or
/// Background — so Net and Cluster spans fold into whichever simulated
/// thread paid for them, exactly like the attribution engine).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    entries: BTreeMap<String, PathStats>,
    /// Total root-span nanoseconds per charge track (keyed by
    /// [`Track::name`]).
    track_totals: BTreeMap<String, u64>,
    violations: u64,
}

impl Profile {
    /// Folds one telemetry instance's span stream into a profile.
    ///
    /// `events` must come from a *single* [`Telemetry`](crate::Telemetry)
    /// (span ids are allocated per instance; merged multi-shard streams
    /// would alias). Instant markers are skipped. Spans whose parent is
    /// not in the stream (legacy `record()` spans, or parents evicted
    /// from the ring) fold as roots of their own charge track — the
    /// conservation property below survives oldest-first ring drops
    /// because children are always recorded before their parents.
    pub fn from_spans(events: &[SpanEvent]) -> Profile {
        // Span id -> index for parent resolution.
        let mut by_id: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, ev) in events.iter().enumerate() {
            if ev.span.is_some() {
                by_id.insert(ev.span.0, i);
            }
        }
        let parent_of = |ev: &SpanEvent| -> Option<usize> {
            if ev.parent.is_some() {
                by_id.get(&ev.parent.0).copied()
            } else {
                None
            }
        };

        // Effective charge per span, memoized; chains are short but the
        // walk is iterative so hostile streams cannot recurse deep.
        let mut charge: Vec<Option<Track>> = vec![None; events.len()];
        for i in 0..events.len() {
            if charge[i].is_some() {
                continue;
            }
            let mut chain = vec![i];
            let mut parent_charge = None;
            while let Some(pi) = parent_of(&events[*chain.last().expect("nonempty")]) {
                if let Some(c) = charge[pi] {
                    parent_charge = Some(c);
                    break;
                }
                if chain.contains(&pi) {
                    break; // malformed parent cycle: treat as root
                }
                chain.push(pi);
            }
            for &j in chain.iter().rev() {
                let c = crate::trace::charge_of(events[j].track, parent_charge);
                charge[j] = Some(c);
                parent_charge = Some(c);
            }
        }
        let charge = |i: usize| charge[i].expect("charge computed for every span");

        // Same-charge child durations, accumulated onto each parent.
        let mut child_ns: Vec<u64> = vec![0; events.len()];
        for (i, ev) in events.iter().enumerate() {
            if ev.is_instant() {
                continue;
            }
            if let Some(pi) = parent_of(ev) {
                if pi != i && charge(pi) == charge(i) {
                    child_ns[pi] += ev.duration.as_ns();
                }
            }
        }

        let mut profile = Profile::default();
        let mut path = String::new();
        for (i, ev) in events.iter().enumerate() {
            if ev.is_instant() {
                continue;
            }
            let c = charge(i);
            // Frames root-to-leaf: walk the parent chain, then reverse.
            let mut frames = vec![ev.kind.name()];
            let mut cursor = parent_of(ev);
            while let Some(pi) = cursor {
                frames.push(events[pi].kind.name());
                if frames.len() > events.len() {
                    break; // malformed cycle; bounded walk
                }
                cursor = parent_of(&events[pi]);
            }
            path.clear();
            path.push_str(c.name());
            for frame in frames.iter().rev() {
                path.push(';');
                path.push_str(frame);
            }

            let d = ev.duration.as_ns();
            let covered = child_ns[i];
            let (self_ns, violated) = if covered > d {
                (0, 1)
            } else {
                (d - covered, 0)
            };
            profile.violations += violated;
            let entry = profile.entries.entry(path.clone()).or_default();
            entry.count += 1;
            entry.total_ns += d;
            entry.self_ns += self_ns;

            let is_root = match parent_of(ev) {
                None => true,
                Some(pi) => charge(pi) != c,
            };
            if is_root {
                *profile.track_totals.entry(c.name().to_string()).or_default() += d;
            }
        }
        profile
    }

    /// Merges `other` into `self`: path weights and track totals add,
    /// violation counts add. Addition is associative and commutative, so
    /// shard-order merging is independent of worker scheduling.
    pub fn merge(&mut self, other: &Profile) {
        for (path, stats) in &other.entries {
            let entry = self.entries.entry(path.clone()).or_default();
            entry.count += stats.count;
            entry.total_ns += stats.total_ns;
            entry.self_ns += stats.self_ns;
        }
        for (track, ns) in &other.track_totals {
            *self.track_totals.entry(track.clone()).or_default() += ns;
        }
        self.violations += other.violations;
    }

    /// A copy with `label` inserted as the first frame under each track
    /// (`application;x` becomes `application;label;x`) — the same idea as
    /// [`SeriesData::prefixed`], for keeping per-shard or per-plan
    /// profiles distinguishable after a merge.
    pub fn prefixed(&self, label: &str) -> Profile {
        let mut out = Profile {
            entries: BTreeMap::new(),
            track_totals: self.track_totals.clone(),
            violations: self.violations,
        };
        for (path, stats) in &self.entries {
            let key = match path.split_once(';') {
                Some((track, rest)) => format!("{track};{label};{rest}"),
                None => format!("{path};{label}"),
            };
            let entry = out.entries.entry(key).or_default();
            entry.count += stats.count;
            entry.total_ns += stats.total_ns;
            entry.self_ns += stats.self_ns;
        }
        out
    }

    /// The folded paths, ordered by key.
    pub fn entries(&self) -> &BTreeMap<String, PathStats> {
        &self.entries
    }

    /// Total root-span nanoseconds per charge track.
    pub fn track_totals(&self) -> &BTreeMap<String, u64> {
        &self.track_totals
    }

    /// Spans whose same-charge children covered more time than the span's
    /// own duration — charge-clock invariant violations.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Whether no spans were folded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of self nanoseconds over every path of `track`.
    pub fn self_total(&self, track: &str) -> u64 {
        let prefix_end = format!("{track};");
        self.entries
            .iter()
            .filter(|(path, _)| path.starts_with(&prefix_end) || path.as_str() == track)
            .map(|(_, s)| s.self_ns)
            .sum()
    }

    /// Exact-sum check: invariant violations plus every track whose
    /// per-path self times do not sum to its root total. Zero means the
    /// profile conserves simulated time exactly — the `fig_profile` gate.
    pub fn conservation_violations(&self) -> u64 {
        let mut v = self.violations;
        for (track, &total) in &self.track_totals {
            if self.self_total(track) != total {
                v += 1;
            }
        }
        v
    }

    /// The `k` hottest paths by self time (ties broken by path order).
    pub fn top_by_self(&self, k: usize) -> Vec<(&str, PathStats)> {
        let mut rows: Vec<(&str, PathStats)> = self
            .entries
            .iter()
            .map(|(path, &stats)| (path.as_str(), stats))
            .collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
        rows.truncate(k);
        rows
    }

    /// Collapsed-stack export (`frame;frame;... self_ns` per line, sorted
    /// by path) — feed straight to `flamegraph.pl` or inferno. Paths with
    /// zero self time are omitted; they carry no flame width.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.entries {
            if stats.self_ns > 0 {
                let _ = writeln!(out, "{path} {}", stats.self_ns);
            }
        }
        out
    }

    /// Line-oriented JSON export: one `paths` element per line so the
    /// zero-dependency [`Profile::from_json`] scanner reads it back.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "\"violations\": {},", self.violations);
        out.push_str("\"track_totals\": {");
        for (i, (track, ns)) in self.track_totals.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {ns}", crate::export::json_escape(track));
        }
        out.push_str("},\n\"paths\": [\n");
        for (i, (path, s)) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "{{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}}}{sep}",
                crate::export::json_escape(path),
                s.count,
                s.total_ns,
                s.self_ns
            );
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a document produced by [`Profile::to_json`]. Returns `None`
    /// when no `paths` array is recognizable. The scanner is line-based
    /// and only as general as our own exporter — it is not a JSON parser.
    pub fn from_json(text: &str) -> Option<Profile> {
        let mut profile = Profile::default();
        let mut saw_paths = false;
        for line in text.lines() {
            let trimmed = line.trim();
            if let Some(rest) = trimmed.strip_prefix("\"violations\":") {
                profile.violations = scan_u64_prefix(rest)?;
            } else if let Some(rest) = trimmed.strip_prefix("\"track_totals\":") {
                // {"application": 12, "eviction/poller": 34},
                let body = rest.trim().trim_start_matches('{');
                let body = body.trim_end_matches(',').trim_end_matches('}');
                for pair in body.split(',') {
                    let (name, value) = pair.split_once(':')?;
                    let name = name.trim().trim_matches('"');
                    if name.is_empty() {
                        continue;
                    }
                    profile
                        .track_totals
                        .insert(name.to_string(), scan_u64_prefix(value)?);
                }
            } else if trimmed.starts_with("\"paths\":") {
                saw_paths = true;
            } else if trimmed.starts_with("{\"path\":") {
                let path = scan_str_field(trimmed, "\"path\":")?;
                let stats = PathStats {
                    count: scan_u64_field(trimmed, "\"count\":")?,
                    total_ns: scan_u64_field(trimmed, "\"total_ns\":")?,
                    self_ns: scan_u64_field(trimmed, "\"self_ns\":")?,
                };
                profile.entries.insert(path, stats);
            }
        }
        saw_paths.then_some(profile)
    }
}

/// Parses the leading unsigned integer of `s` (whitespace and trailing
/// punctuation tolerated).
fn scan_u64_prefix(s: &str) -> Option<u64> {
    let digits: String = s
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The number following `field` in `line`.
fn scan_u64_field(line: &str, field: &str) -> Option<u64> {
    let at = line.find(field)?;
    scan_u64_prefix(&line[at + field.len()..])
}

/// The quoted string following `field` in `line` (our own paths contain
/// no quotes or escapes, so a plain quote scan suffices).
fn scan_str_field(line: &str, field: &str) -> Option<String> {
    let at = line.find(field)?;
    let rest = line[at + field.len()..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// One path's self-time movement between two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// The `track;frame;...` path.
    pub path: String,
    /// Self nanoseconds in the baseline profile.
    pub base_self_ns: u64,
    /// Self nanoseconds in the current profile.
    pub current_self_ns: u64,
    /// `current - base` (signed).
    pub delta_ns: i64,
    /// `current / max(base, 1)` — new paths read as their absolute size.
    pub ratio: f64,
}

/// A per-path comparison of two profiles, for blaming regressions on the
/// path that actually moved instead of "something got slower".
#[derive(Debug, Clone, Default)]
pub struct ProfileDiff {
    /// All paths present in either profile, largest absolute self-time
    /// delta first (ties broken by path order).
    pub rows: Vec<DiffRow>,
}

impl ProfileDiff {
    /// Diffs `current` against `base` over the union of their paths.
    pub fn between(base: &Profile, current: &Profile) -> ProfileDiff {
        let mut paths: Vec<&String> = base.entries.keys().collect();
        paths.extend(current.entries.keys());
        paths.sort();
        paths.dedup();
        let mut rows: Vec<DiffRow> = paths
            .into_iter()
            .map(|path| {
                let b = base.entries.get(path).copied().unwrap_or_default();
                let c = current.entries.get(path).copied().unwrap_or_default();
                DiffRow {
                    path: path.clone(),
                    base_self_ns: b.self_ns,
                    current_self_ns: c.self_ns,
                    delta_ns: c.self_ns as i64 - b.self_ns as i64,
                    ratio: c.self_ns as f64 / b.self_ns.max(1) as f64,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.delta_ns
                .abs()
                .cmp(&a.delta_ns.abs())
                .then(a.path.cmp(&b.path))
        });
        ProfileDiff { rows }
    }

    /// The worst regression: among paths whose current self time is at
    /// least `min_ns`, the grown path with the highest ratio. `None` when
    /// nothing grew.
    pub fn worst_regression(&self, min_ns: u64) -> Option<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.delta_ns > 0 && r.current_self_ns >= min_ns)
            .max_by(|a, b| {
                a.ratio
                    .partial_cmp(&b.ratio)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.path.cmp(&a.path))
            })
    }

    /// Renders the `top` largest movements as an aligned text table
    /// (deterministic for identical inputs).
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>14} {:>8} {:>14} {:>14}  path",
            "delta(ns)", "ratio", "base self", "current self"
        );
        for row in self.rows.iter().take(top) {
            let _ = writeln!(
                out,
                "{:>+14} {:>8.2} {:>14} {:>14}  {}",
                row.delta_ns, row.ratio, row.base_self_ns, row.current_self_ns, row.path
            );
        }
        if self.rows.is_empty() {
            out.push_str("(no paths in either profile)\n");
        }
        out
    }
}

/// Queue/occupancy weather for one fabric link (initiator → memory
/// node), folded from the windowed series.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkQueue {
    /// Work requests posted over the link.
    pub wrs: u64,
    /// Time-integral of in-flight requests (WR-nanoseconds) — divide a
    /// window's delta by the window width for mean occupancy.
    pub inflight_ns: u64,
    /// Largest per-window mean in-flight depth.
    pub peak_mean_depth: f64,
    /// Deepest single chain posted on the link.
    pub peak_chain_depth: u64,
}

/// Apply-backlog weather for one memory node, folded from the windowed
/// series' backlog gauges (window-boundary samples) and ingest-time
/// depth histograms (within-window peaks the gauges miss when a tick
/// drains the backlog before the boundary).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeQueue {
    /// Largest backlog, in bytes, observed at any ingest or window
    /// boundary.
    pub peak_backlog_bytes: u64,
    /// Largest backlog, in batches, observed at any ingest or window
    /// boundary.
    pub peak_backlog_batches: u64,
}

/// Per-link in-flight depth and per-node apply-backlog depth, folded
/// from a windowed [`SeriesData`] — the congestion table the future
/// event-queue scheduler will be validated against.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Per-link rows keyed by memory-node id.
    pub links: BTreeMap<u32, LinkQueue>,
    /// Per-node rows keyed by memory-node id.
    pub nodes: BTreeMap<u32, NodeQueue>,
}

/// Parses the `<id>` of `"{prefix}{id}{suffix}"`-shaped metric names.
fn metric_id(name: &str, prefix: &str, suffix: &str) -> Option<u32> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl QueueStats {
    /// Folds the queueing metrics out of a windowed series: the
    /// `net.link<i>.*` counters/histograms the fabric records per posted
    /// chain, and the `cluster.node<i>.backlog_*` gauges plus
    /// `backlog_depth`/`backlog_bytes_depth` ingest-time histograms the
    /// memory-node runtimes keep.
    pub fn from_series(series: &SeriesData) -> QueueStats {
        let mut stats = QueueStats::default();
        let window_ns = series.window_ns.max(1);
        for w in &series.windows {
            for (name, &v) in &w.counters {
                if let Some(id) = metric_id(name, "net.link", ".wrs") {
                    stats.links.entry(id).or_default().wrs += v;
                } else if let Some(id) = metric_id(name, "net.link", ".inflight_ns") {
                    let link = stats.links.entry(id).or_default();
                    link.inflight_ns += v;
                    let mean = v as f64 / window_ns as f64;
                    if mean > link.peak_mean_depth {
                        link.peak_mean_depth = mean;
                    }
                }
            }
            for (name, h) in &w.histograms {
                if let Some(id) = metric_id(name, "net.link", ".depth") {
                    let link = stats.links.entry(id).or_default();
                    link.peak_chain_depth = link.peak_chain_depth.max(h.max());
                } else if let Some(id) = metric_id(name, "cluster.node", ".backlog_depth") {
                    let node = stats.nodes.entry(id).or_default();
                    node.peak_backlog_batches = node.peak_backlog_batches.max(h.max());
                } else if let Some(id) = metric_id(name, "cluster.node", ".backlog_bytes_depth") {
                    let node = stats.nodes.entry(id).or_default();
                    node.peak_backlog_bytes = node.peak_backlog_bytes.max(h.max());
                }
            }
            for (name, &v) in &w.gauges {
                if let Some(id) = metric_id(name, "cluster.node", ".backlog_bytes") {
                    let node = stats.nodes.entry(id).or_default();
                    node.peak_backlog_bytes = node.peak_backlog_bytes.max(v as u64);
                } else if let Some(id) = metric_id(name, "cluster.node", ".backlog_batches") {
                    let node = stats.nodes.entry(id).or_default();
                    node.peak_backlog_batches = node.peak_backlog_batches.max(v as u64);
                }
            }
        }
        stats
    }

    /// Whether no queueing metrics were present in the series.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty()
    }
}

/// Wall-clock totals of one named host scope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostScopeStats {
    /// The scope name passed to [`host_scope`].
    pub name: &'static str,
    /// Times the scope was entered.
    pub calls: u64,
    /// Total host nanoseconds across all calls.
    pub total_ns: u64,
    /// Slowest single call.
    pub max_ns: u64,
}

static HOST_ENABLED: AtomicBool = AtomicBool::new(false);

fn host_stats() -> &'static Mutex<BTreeMap<&'static str, HostScopeStats>> {
    static STATS: OnceLock<Mutex<BTreeMap<&'static str, HostScopeStats>>> = OnceLock::new();
    STATS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Starts host wall-clock scope collection process-wide (clearing any
/// previous totals). Scopes on *every* thread record until
/// [`host_profile_stop`]; while stopped, [`host_scope`] costs one
/// relaxed atomic load.
pub fn host_profile_start() {
    if let Ok(mut map) = host_stats().lock() {
        map.clear();
    }
    HOST_ENABLED.store(true, Ordering::SeqCst);
}

/// Stops collection and drains the totals, largest first. Host times are
/// nondeterministic by nature — report them on stderr or in bench
/// output, never in byte-compared artifacts.
pub fn host_profile_stop() -> Vec<HostScopeStats> {
    HOST_ENABLED.store(false, Ordering::SeqCst);
    let mut rows: Vec<HostScopeStats> = match host_stats().lock() {
        Ok(mut map) => std::mem::take(&mut *map).into_values().collect(),
        Err(_) => Vec::new(),
    };
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
    rows
}

/// An RAII wall-clock scope; the elapsed host time is recorded into the
/// process-wide table when collection is on ([`host_profile_start`]).
#[derive(Debug)]
pub struct HostScope {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a named host wall-clock scope. Near-free (one atomic load)
/// while collection is off.
pub fn host_scope(name: &'static str) -> HostScope {
    let start = HOST_ENABLED
        .load(Ordering::Relaxed)
        .then(Instant::now);
    HostScope { name, start }
}

impl Drop for HostScope {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        if let Ok(mut map) = host_stats().lock() {
            let entry = map.entry(self.name).or_insert_with(|| HostScopeStats {
                name: self.name,
                ..HostScopeStats::default()
            });
            entry.calls += 1;
            entry.total_ns += elapsed;
            entry.max_ns = entry.max_ns.max(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SpanId, TraceId};
    use crate::timeseries::SeriesWindow;
    use kona_types::Nanos;

    fn span(
        track: Track,
        start: u64,
        dur: u64,
        kind: EventKind,
        id: u32,
        parent: u32,
    ) -> SpanEvent {
        SpanEvent {
            track,
            start: Nanos::from_ns(start),
            duration: Nanos::from_ns(dur),
            kind,
            trace: TraceId(1),
            span: SpanId(id),
            parent: SpanId(parent),
        }
    }

    /// One app access with a net leaf, plus a background eviction with a
    /// net leaf — the canonical two-charge tree.
    fn sample_events() -> Vec<SpanEvent> {
        vec![
            span(Track::Net, 10, 300, EventKind::Verb { opcode: crate::event::VerbOpcode::Read, bytes: 64 }, 2, 1),
            span(Track::App, 0, 1_000, EventKind::AppAccess, 1, 0),
            span(Track::Net, 50, 400, EventKind::Verb { opcode: crate::event::VerbOpcode::Write, bytes: 64 }, 4, 3),
            span(Track::Background, 0, 900, EventKind::Evict, 3, 0),
        ]
    }

    #[test]
    fn fold_computes_self_and_total() {
        let p = Profile::from_spans(&sample_events());
        assert_eq!(p.violations(), 0);
        let access = &p.entries()["application;app_access"];
        assert_eq!((access.count, access.total_ns, access.self_ns), (1, 1_000, 700));
        let verb = &p.entries()["application;app_access;verb"];
        assert_eq!(verb.self_ns, 300);
        let evict = &p.entries()["eviction/poller;evict"];
        assert_eq!(evict.self_ns, 500);
        assert_eq!(p.track_totals()["application"], 1_000);
        assert_eq!(p.track_totals()["eviction/poller"], 900);
        assert_eq!(p.conservation_violations(), 0);
        assert_eq!(p.self_total("application"), 1_000);
        assert_eq!(p.self_total("eviction/poller"), 900);
    }

    #[test]
    fn net_spans_charge_to_their_poster() {
        let p = Profile::from_spans(&sample_events());
        // The eviction's verb leaf folds under Background, not App.
        assert!(p.entries().contains_key("eviction/poller;evict;verb"));
        assert!(!p.entries().contains_key("application;evict;verb"));
    }

    #[test]
    fn legacy_unlinked_spans_fold_as_roots() {
        let events = vec![SpanEvent::new(
            Track::App,
            Nanos::from_ns(5),
            Nanos::from_ns(50),
            EventKind::Sync,
        )];
        let p = Profile::from_spans(&events);
        assert_eq!(p.entries()["application;sync"].self_ns, 50);
        assert_eq!(p.conservation_violations(), 0);
    }

    #[test]
    fn instants_are_skipped() {
        let mut events = sample_events();
        events.push(SpanEvent::new(
            Track::Net,
            Nanos::from_ns(20),
            Nanos::ZERO,
            EventKind::Fault(crate::event::FaultKind::Dropped),
        ));
        let p = Profile::from_spans(&events);
        assert!(!p.entries().keys().any(|k| k.contains("fault")));
    }

    #[test]
    fn overlong_children_are_counted_as_violations() {
        let events = vec![
            span(Track::App, 0, 80, EventKind::LocalHit, 2, 1),
            span(Track::App, 0, 50, EventKind::AppAccess, 1, 0),
        ];
        let p = Profile::from_spans(&events);
        assert_eq!(p.violations(), 1);
        assert!(p.conservation_violations() > 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let a = Profile::from_spans(&sample_events());
        let b = {
            let mut events = sample_events();
            for ev in &mut events {
                ev.start += Nanos::from_ns(10_000);
            }
            Profile::from_spans(&events)
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(
            ab.entries()["application;app_access"].count,
            2 * a.entries()["application;app_access"].count
        );
    }

    #[test]
    fn collapsed_format_is_flamegraph_shaped() {
        let p = Profile::from_spans(&sample_events());
        let folded = p.to_collapsed();
        assert!(folded.contains("application;app_access;verb 300\n"));
        for line in folded.lines() {
            let (path, value) = line.rsplit_once(' ').expect("path value");
            assert!(!path.is_empty());
            assert!(value.parse::<u64>().expect("numeric weight") > 0);
        }
        // Sorted by path.
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn json_round_trips() {
        let p = Profile::from_spans(&sample_events());
        let parsed = Profile::from_json(&p.to_json()).expect("parses");
        assert_eq!(parsed, p);
        assert!(Profile::from_json("not json").is_none());
    }

    #[test]
    fn prefixed_inserts_a_frame_under_the_track() {
        let p = Profile::from_spans(&sample_events()).prefixed("shard0");
        assert!(p.entries().contains_key("application;shard0;app_access"));
        assert_eq!(p.track_totals()["application"], 1_000);
    }

    #[test]
    fn diff_blames_the_grown_path() {
        let base = Profile::from_spans(&sample_events());
        let mut slow = sample_events();
        // Inflate the app access' verb leaf 5x.
        slow[0].duration = Nanos::from_ns(1_500);
        slow[1].duration = Nanos::from_ns(2_200);
        let current = Profile::from_spans(&slow);
        let diff = ProfileDiff::between(&base, &current);
        let worst = diff.worst_regression(0).expect("something grew");
        assert_eq!(worst.path, "application;app_access;verb");
        assert_eq!(worst.delta_ns, 1_200);
        assert!(worst.ratio > 4.9);
        let rendered = diff.render(3);
        assert!(rendered.contains("application;app_access;verb"));
        // Identical profiles have no regression.
        assert!(ProfileDiff::between(&base, &base).worst_regression(0).is_none());
    }

    #[test]
    fn queue_stats_fold_links_and_nodes() {
        let mut series = SeriesData::new(1_000);
        let mut w = SeriesWindow::empty(0);
        w.counters.insert("net.link0.wrs".into(), 8);
        w.counters.insert("net.link0.inflight_ns".into(), 4_000);
        let mut h = crate::metrics::HistogramData::new();
        h.record(3);
        w.histograms.insert("net.link0.depth".into(), h);
        w.gauges.insert("cluster.node1.backlog_bytes".into(), 640.0);
        w.gauges.insert("cluster.node1.backlog_batches".into(), 2.0);
        // Ingest-time depth histograms outrank the boundary gauges: a
        // backlog that drained before window close still shows its peak.
        let mut depth = crate::metrics::HistogramData::new();
        depth.record(5);
        w.histograms.insert("cluster.node1.backlog_depth".into(), depth);
        let mut bytes = crate::metrics::HistogramData::new();
        bytes.record(1 << 12);
        w.histograms
            .insert("cluster.node1.backlog_bytes_depth".into(), bytes);
        series.windows.push(w);
        let q = QueueStats::from_series(&series);
        assert!(!q.is_empty());
        let link = &q.links[&0];
        assert_eq!(link.wrs, 8);
        assert!((link.peak_mean_depth - 4.0).abs() < 1e-9);
        assert!(link.peak_chain_depth >= 3);
        let node = &q.nodes[&1];
        assert_eq!(node.peak_backlog_bytes, 1 << 12);
        assert_eq!(node.peak_backlog_batches, 5);
        assert!(QueueStats::from_series(&SeriesData::new(1)).is_empty());
    }

    #[test]
    fn host_scopes_record_when_enabled() {
        host_profile_start();
        {
            let _a = host_scope("unit_test_scope");
            let _b = host_scope("unit_test_scope");
        }
        let rows = host_profile_stop();
        let row = rows
            .iter()
            .find(|r| r.name == "unit_test_scope")
            .expect("recorded");
        assert_eq!(row.calls, 2);
        assert!(row.max_ns <= row.total_ns);
        // Disabled scopes are inert.
        {
            let _c = host_scope("unit_test_scope");
        }
        assert!(host_profile_stop().is_empty());
    }
}
