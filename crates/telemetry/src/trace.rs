//! Causal tracing: trace/span identity, charge clocks and the flight
//! recorder.
//!
//! # Trace model
//!
//! A *trace* is one top-level operation ([`OpKind`]): an application
//! access, an explicit sync, a standalone eviction batch, a prefetch or an
//! MCE recovery. Within a trace, spans form a tree via parent links, so a
//! single remote access reads as: `app_access` → `remote_fetch` →
//! (`flush` → `verb`), `backoff`, `verb` … rather than a bag of events.
//!
//! # Charge clocks
//!
//! The simulator charges every nanosecond to exactly one of two simulated
//! threads (the paper's concurrency model): the application thread or the
//! background eviction/poller machinery. The causal state keeps one
//! monotone clock per charge. A span *charges* the thread that pays for
//! it, which is derived from its display [`Track`] and its parent:
//!
//! * once inside a Background-charged span, every descendant charges
//!   Background (background work never bills the app);
//! * a [`Track::Background`] span under an App-charged parent switches its
//!   subtree to the background charge (and fast-forwards the background
//!   clock to the app clock, modelling the hand-off);
//! * [`Track::Net`] spans charge whichever thread posted them.
//!
//! Leaves advance their charge clock by their duration; when a span
//! closes, its duration is `max(reported, clock-covered)` and the clock
//! snaps to its end. This makes two invariants true *by construction*:
//! parents fully contain same-charge children, and the durations of a
//! span's same-charge children plus its residual sum exactly to its own
//! duration — which is what lets the attribution table sum exactly to
//! end-to-end latency (see `attribution.rs`).
//!
//! # Determinism
//!
//! Span ids are allocated monotonically per `Telemetry` instance and
//! trace ids monotonically from a configurable base
//! ([`Telemetry::set_trace_id_base`](crate::Telemetry::set_trace_id_base)),
//! so parallel workers with private `Telemetry` handles produce
//! byte-identical trees at any `--jobs` count when results are merged in
//! input order.

use crate::event::{EventKind, SpanEvent, SpanId, Track, TraceId};
use kona_types::Nanos;

/// The kind of top-level operation a trace covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// One application load or store.
    Access,
    /// An explicit `sync()` flush requested by the application.
    Sync,
    /// A standalone eviction batch (not nested in an access).
    EvictionBatch,
    /// A standalone prefetch operation.
    Prefetch,
    /// An access that escalated into MCE recovery (retagged in place).
    Recovery,
}

impl OpKind {
    /// A stable snake_case name for tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Access => "access",
            OpKind::Sync => "sync",
            OpKind::EvictionBatch => "eviction_batch",
            OpKind::Prefetch => "prefetch",
            OpKind::Recovery => "recovery",
        }
    }

    /// The display track of this operation's root span.
    pub fn track(self) -> Track {
        match self {
            OpKind::Access | OpKind::Sync | OpKind::Recovery => Track::App,
            OpKind::EvictionBatch | OpKind::Prefetch => Track::Background,
        }
    }

    /// The event kind used for this operation's root span.
    pub fn event_kind(self) -> EventKind {
        match self {
            OpKind::Access | OpKind::Recovery => EventKind::AppAccess,
            OpKind::Sync => EventKind::Sync,
            OpKind::EvictionBatch => EventKind::Evict,
            OpKind::Prefetch => EventKind::Prefetch,
        }
    }

    /// All operation kinds, in table order.
    pub const ALL: [OpKind; 5] = [
        OpKind::Access,
        OpKind::Sync,
        OpKind::EvictionBatch,
        OpKind::Prefetch,
        OpKind::Recovery,
    ];
}

/// Handle for an open span, returned by
/// [`Telemetry::span_open`](crate::Telemetry::span_open) and consumed by
/// [`Telemetry::span_close`](crate::Telemetry::span_close).
#[derive(Debug)]
#[must_use = "open spans must be closed (trace_end force-closes leftovers)"]
pub struct SpanToken {
    pub(crate) span: SpanId,
}

impl SpanToken {
    /// A token that closes as a no-op (returned when tracing is off).
    pub(crate) const NOOP: SpanToken = SpanToken { span: SpanId::NONE };
}

/// One completed trace: the operation it covered and its spans (in close
/// order; the root is the unique span with `parent == SpanId::NONE`).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The trace's identity.
    pub id: TraceId,
    /// What kind of top-level operation it was.
    pub op: OpKind,
    /// Every span of the trace, children before parents.
    pub spans: Vec<SpanEvent>,
}

impl TraceRecord {
    /// The root span, if the trace is well-formed.
    pub fn root(&self) -> Option<&SpanEvent> {
        self.spans.iter().find(|s| s.parent == SpanId::NONE)
    }

    /// End-to-end duration (the root span's duration).
    pub fn duration(&self) -> Nanos {
        self.root().map_or(Nanos::ZERO, |r| r.duration)
    }
}

/// The charge a span bills its time to: App or Background (never Net).
/// Cluster-track spans (memory-node runtimes, migration, rebalance) are
/// off the application's critical path, so they charge as background.
/// `parent` is the enclosing span's charge, if any.
pub(crate) fn charge_of(track: Track, parent: Option<Track>) -> Track {
    if parent == Some(Track::Background)
        || track == Track::Background
        || track == Track::Cluster
    {
        Track::Background
    } else {
        Track::App
    }
}

fn clock_index(charge: Track) -> usize {
    match charge {
        Track::Background => 1,
        _ => 0,
    }
}

#[derive(Debug)]
struct OpenSpan {
    span: SpanId,
    parent: SpanId,
    track: Track,
    charge: Track,
    start: Nanos,
    kind: EventKind,
}

#[derive(Debug)]
struct TraceCtx {
    id: TraceId,
    op: OpKind,
    root: SpanId,
    /// Tokens of nested `trace_begin`s folded into plain spans.
    nested: Vec<SpanId>,
    buf: Vec<SpanEvent>,
}

/// The per-`Telemetry` causal state: clocks, the open-span stack, the
/// current trace and the flight recorder ring.
#[derive(Debug)]
pub(crate) struct CausalState {
    pub(crate) enabled: bool,
    clocks: [Nanos; 2],
    stack: Vec<OpenSpan>,
    cur: Option<TraceCtx>,
    next_span: u32,
    next_trace: u64,
    trace_base: u64,
    flight: Vec<TraceRecord>,
    flight_capacity: usize,
    flight_dropped: u64,
}

impl CausalState {
    pub(crate) fn new(enabled: bool) -> Self {
        CausalState {
            enabled,
            clocks: [Nanos::ZERO; 2],
            stack: Vec::new(),
            cur: None,
            next_span: 0,
            next_trace: 0,
            trace_base: 0,
            flight: Vec::new(),
            flight_capacity: 0,
            flight_dropped: 0,
        }
    }

    pub(crate) fn set_flight_capacity(&mut self, capacity: usize) {
        self.flight_capacity = capacity;
        if capacity > 0 {
            self.enabled = true;
        }
        while self.flight.len() > capacity {
            self.flight.remove(0);
            self.flight_dropped += 1;
        }
    }

    pub(crate) fn set_trace_id_base(&mut self, base: u64) {
        self.trace_base = base;
        self.next_trace = 0;
    }

    pub(crate) fn flight(&self) -> &[TraceRecord] {
        &self.flight
    }

    pub(crate) fn flight_dropped(&self) -> u64 {
        self.flight_dropped
    }

    fn alloc_span(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId(self.next_span)
    }

    fn parent(&self) -> (SpanId, Option<Track>) {
        match self.stack.last() {
            Some(top) => (top.span, Some(top.charge)),
            None => (SpanId::NONE, None),
        }
    }

    fn current_trace(&self) -> TraceId {
        self.cur.as_ref().map_or(TraceId::NONE, |c| c.id)
    }

    /// A Background-charged span opening under an App-charged parent
    /// models handing work to the background thread: that thread cannot
    /// start before "now" on the app clock.
    fn sync_clocks(&mut self, charge: Track, parent_charge: Option<Track>) {
        if charge == Track::Background && parent_charge == Some(Track::App) {
            self.clocks[1] = self.clocks[1].max(self.clocks[0]);
        }
    }

    fn emit(&mut self, ev: SpanEvent, out: &mut Vec<SpanEvent>) {
        match &mut self.cur {
            Some(ctx) => ctx.buf.push(ev),
            None => out.push(ev),
        }
    }

    /// Starts a trace. A `trace_begin` while another trace is open folds
    /// into a plain span of the nested operation's kind (closed by the
    /// matching `trace_end`), so callers never need to know their nesting.
    pub(crate) fn begin(&mut self, op: OpKind) -> TraceId {
        if !self.enabled {
            return TraceId::NONE;
        }
        if self.cur.is_some() {
            let token = self.open(op.track(), op.event_kind());
            if let Some(ctx) = &mut self.cur {
                ctx.nested.push(token.span);
            }
            return self.current_trace();
        }
        self.next_trace += 1;
        let id = TraceId(self.trace_base + self.next_trace);
        self.cur = Some(TraceCtx {
            id,
            op,
            root: SpanId::NONE,
            nested: Vec::new(),
            buf: Vec::new(),
        });
        let token = self.open(op.track(), op.event_kind());
        if let Some(ctx) = &mut self.cur {
            ctx.root = token.span;
        }
        id
    }

    /// Relabels the current trace's operation (e.g. an access that
    /// escalated into MCE recovery becomes a `Recovery` operation).
    pub(crate) fn retag(&mut self, op: OpKind) {
        if let Some(ctx) = &mut self.cur {
            ctx.op = op;
        }
    }

    /// Ends the current trace: force-closes dangling spans (error paths
    /// may propagate `?` past a close), closes the root with
    /// `max(elapsed, covered)` and returns the completed record.
    pub(crate) fn end(&mut self, elapsed: Nanos, out: &mut Vec<SpanEvent>) -> Option<TraceRecord> {
        if !self.enabled {
            return None;
        }
        let ctx = self.cur.as_mut()?;
        if let Some(span) = ctx.nested.pop() {
            self.close(SpanToken { span }, elapsed, out);
            return None;
        }
        let root = ctx.root;
        self.close(SpanToken { span: root }, elapsed, out);
        let ctx = self.cur.take()?;
        let record = TraceRecord {
            id: ctx.id,
            op: ctx.op,
            spans: ctx.buf,
        };
        if self.flight_capacity > 0 {
            if self.flight.len() == self.flight_capacity {
                self.flight.remove(0);
                self.flight_dropped += 1;
            }
            self.flight.push(record.clone());
        }
        Some(record)
    }

    pub(crate) fn open(&mut self, track: Track, kind: EventKind) -> SpanToken {
        if !self.enabled {
            return SpanToken::NOOP;
        }
        let (parent, parent_charge) = self.parent();
        let charge = charge_of(track, parent_charge);
        self.sync_clocks(charge, parent_charge);
        let span = self.alloc_span();
        self.stack.push(OpenSpan {
            span,
            parent,
            track,
            charge,
            start: self.clocks[clock_index(charge)],
            kind,
        });
        SpanToken { span }
    }

    /// The display track matching the current charge (used by leaves that
    /// want to ride whichever thread is paying, e.g. retry backoff).
    pub(crate) fn inherit_track(&self) -> Track {
        match self.stack.last() {
            Some(top) => top.charge,
            None => Track::App,
        }
    }

    pub(crate) fn close(&mut self, token: SpanToken, duration: Nanos, out: &mut Vec<SpanEvent>) {
        if !self.enabled || !token.span.is_some() {
            return;
        }
        let Some(pos) = self.stack.iter().rposition(|s| s.span == token.span) else {
            return;
        };
        while self.stack.len() > pos + 1 {
            let dangling = self.stack.pop().expect("len checked");
            self.finish(dangling, None, out);
        }
        let open = self.stack.pop().expect("position found");
        self.finish(open, Some(duration), out);
    }

    fn finish(&mut self, open: OpenSpan, reported: Option<Nanos>, out: &mut Vec<SpanEvent>) {
        let i = clock_index(open.charge);
        let covered = self.clocks[i].saturating_sub(open.start);
        let duration = reported.map_or(covered, |r| r.max(covered));
        self.clocks[i] = open.start + duration;
        let ev = SpanEvent {
            track: open.track,
            start: open.start,
            duration,
            kind: open.kind,
            trace: self.current_trace(),
            span: open.span,
            parent: open.parent,
        };
        self.emit(ev, out);
    }

    pub(crate) fn leaf(&mut self, track: Track, kind: EventKind, duration: Nanos, out: &mut Vec<SpanEvent>) {
        if !self.enabled {
            return;
        }
        let (parent, parent_charge) = self.parent();
        let charge = charge_of(track, parent_charge);
        self.sync_clocks(charge, parent_charge);
        let i = clock_index(charge);
        let start = self.clocks[i];
        self.clocks[i] = start + duration;
        let span = self.alloc_span();
        let ev = SpanEvent {
            track,
            start,
            duration,
            kind,
            trace: self.current_trace(),
            span,
            parent,
        };
        self.emit(ev, out);
    }

    pub(crate) fn instant(&mut self, track: Track, kind: EventKind, out: &mut Vec<SpanEvent>) {
        self.leaf(track, kind, Nanos::ZERO, out);
    }
}

/// Serializes completed traces as a JSON array (the flight-recorder dump
/// format; also used for trace-tree fingerprints in tests).
pub fn traces_to_json(traces: &[TraceRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (ti, t) in traces.iter().enumerate() {
        let tsep = if ti == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{tsep}\n  {{\"trace\":{},\"op\":\"{}\",\"duration_ns\":{},\"spans\":[",
            t.id.0,
            t.op.name(),
            t.duration().as_ns()
        );
        for (si, s) in t.spans.iter().enumerate() {
            let ssep = if si == 0 { "" } else { "," };
            let extra = match s.kind {
                EventKind::Verb { opcode, bytes } => {
                    format!(",\"opcode\":\"{}\",\"bytes\":{bytes}", opcode.name())
                }
                EventKind::Fault(f) => format!(",\"fault\":\"{}\"", f.name()),
                _ => String::new(),
            };
            let _ = write!(
                out,
                "{ssep}\n    {{\"span\":{},\"parent\":{},\"track\":\"{}\",\"kind\":\"{}\",\
                 \"start_ns\":{},\"dur_ns\":{}{extra}}}",
                s.span.0,
                s.parent.0,
                s.track.name(),
                s.kind.name(),
                s.start.as_ns(),
                s.duration.as_ns()
            );
        }
        out.push_str("\n  ]}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_state_is_inert() {
        let mut s = CausalState::new(false);
        let mut out = Vec::new();
        assert_eq!(s.begin(OpKind::Access), TraceId::NONE);
        let tok = s.open(Track::App, EventKind::RemoteFetch);
        s.close(tok, Nanos::from_ns(10), &mut out);
        assert!(s.end(Nanos::from_ns(10), &mut out).is_none());
        assert!(out.is_empty());
    }

    #[test]
    fn simple_trace_tree_and_containment() {
        let mut s = CausalState::new(true);
        let mut out = Vec::new();
        let id = s.begin(OpKind::Access);
        assert!(id.is_some());
        s.leaf(Track::App, EventKind::LocalHit, Nanos::from_ns(3), &mut out);
        let fetch = s.open(Track::App, EventKind::RemoteFetch);
        s.leaf(Track::Net, EventKind::Verb { opcode: crate::VerbOpcode::Read, bytes: 4096 }, Nanos::from_ns(40), &mut out);
        s.close(fetch, Nanos::from_ns(50), &mut out);
        let rec = s.end(Nanos::from_ns(60), &mut out).expect("trace completes");
        assert!(out.is_empty(), "in-trace spans buffer in the record");
        assert_eq!(rec.spans.len(), 4);
        let root = *rec.root().expect("root");
        assert_eq!(root.kind, EventKind::AppAccess);
        assert_eq!(root.duration, Nanos::from_ns(60));
        for s in &rec.spans {
            assert_eq!(s.trace, id);
            if s.parent.is_some() {
                let parent = rec.spans.iter().find(|p| p.span == s.parent).expect("parent");
                assert!(s.start >= parent.start && s.end() <= parent.end(), "containment");
            }
        }
        // The verb leaf nests under the fetch span, not the root.
        let verb = rec.spans.iter().find(|s| matches!(s.kind, EventKind::Verb { .. })).unwrap();
        let fetch = rec.spans.iter().find(|s| s.kind == EventKind::RemoteFetch).unwrap();
        assert_eq!(verb.parent, fetch.span);
        // Reported < covered is corrected upward: fetch covered 40ns, reported 50.
        assert_eq!(fetch.duration, Nanos::from_ns(50));
    }

    #[test]
    fn background_children_do_not_bill_the_app_clock() {
        let mut s = CausalState::new(true);
        let mut out = Vec::new();
        s.begin(OpKind::Access);
        s.leaf(Track::App, EventKind::FmemFill, Nanos::from_ns(10), &mut out);
        let evict = s.open(Track::Background, EventKind::Evict);
        s.leaf(Track::Background, EventKind::SegmentCopy, Nanos::from_ns(500), &mut out);
        s.close(evict, Nanos::from_ns(500), &mut out);
        let rec = s.end(Nanos::from_ns(10), &mut out).expect("trace");
        // Root covers only the app-charged 10ns, not the background 500.
        assert_eq!(rec.duration(), Nanos::from_ns(10));
        let evict = rec.spans.iter().find(|s| s.kind == EventKind::Evict).unwrap();
        // Background clock fast-forwarded to the app hand-off point.
        assert_eq!(evict.start, Nanos::from_ns(10));
    }

    #[test]
    fn dangling_spans_are_force_closed_at_trace_end() {
        let mut s = CausalState::new(true);
        let mut out = Vec::new();
        s.begin(OpKind::Access);
        let _fetch = s.open(Track::App, EventKind::RemoteFetch);
        s.leaf(Track::App, EventKind::Backoff, Nanos::from_ns(5), &mut out);
        // Error path: the fetch token is never closed.
        let rec = s.end(Nanos::from_ns(5), &mut out).expect("trace");
        let fetch = rec.spans.iter().find(|s| s.kind == EventKind::RemoteFetch).unwrap();
        assert_eq!(fetch.duration, Nanos::from_ns(5), "covered duration");
        assert_eq!(rec.duration(), Nanos::from_ns(5));
    }

    #[test]
    fn nested_begin_folds_into_a_span() {
        let mut s = CausalState::new(true);
        let mut out = Vec::new();
        let outer = s.begin(OpKind::Access);
        let inner = s.begin(OpKind::Sync);
        assert_eq!(outer, inner, "nested begin joins the open trace");
        s.leaf(Track::App, EventKind::Backoff, Nanos::from_ns(2), &mut out);
        s.end(Nanos::from_ns(2), &mut out);
        let rec = s.end(Nanos::from_ns(4), &mut out).expect("outer trace");
        assert_eq!(rec.op, OpKind::Access);
        let sync = rec.spans.iter().find(|s| s.kind == EventKind::Sync).unwrap();
        assert_eq!(sync.duration, Nanos::from_ns(2));
        assert_eq!(rec.duration(), Nanos::from_ns(4));
    }

    #[test]
    fn spans_outside_traces_still_record_with_parent_links() {
        let mut s = CausalState::new(true);
        let mut out = Vec::new();
        let evict = s.open(Track::Background, EventKind::Evict);
        s.leaf(Track::Background, EventKind::BitmapScan, Nanos::from_ns(50), &mut out);
        s.close(evict, Nanos::from_ns(60), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].kind, EventKind::Evict);
        assert_eq!(out[0].parent, out[1].span);
        assert_eq!(out[1].trace, TraceId::NONE);
    }

    #[test]
    fn flight_ring_is_bounded_and_counts_drops() {
        let mut s = CausalState::new(true);
        s.set_flight_capacity(2);
        let mut out = Vec::new();
        for _ in 0..5 {
            s.begin(OpKind::Access);
            s.leaf(Track::App, EventKind::LocalHit, Nanos::from_ns(1), &mut out);
            s.end(Nanos::from_ns(1), &mut out);
        }
        assert_eq!(s.flight().len(), 2);
        assert_eq!(s.flight_dropped(), 3);
        // The ring keeps the most recent traces.
        assert_eq!(s.flight()[0].id, TraceId(4));
        assert_eq!(s.flight()[1].id, TraceId(5));
    }

    #[test]
    fn trace_ids_honor_the_worker_base() {
        let mut s = CausalState::new(true);
        s.set_trace_id_base(7 << 32);
        let id = s.begin(OpKind::Access);
        assert_eq!(id, TraceId((7 << 32) + 1));
        let mut out = Vec::new();
        s.end(Nanos::ZERO, &mut out);
    }

    #[test]
    fn traces_json_shape() {
        let mut s = CausalState::new(true);
        s.set_flight_capacity(4);
        let mut out = Vec::new();
        s.begin(OpKind::Sync);
        s.leaf(Track::Net, EventKind::Verb { opcode: crate::VerbOpcode::Write, bytes: 64 }, Nanos::from_ns(9), &mut out);
        s.instant(Track::Net, EventKind::Fault(crate::FaultKind::Dropped), &mut out);
        s.end(Nanos::from_ns(9), &mut out);
        let json = traces_to_json(s.flight());
        assert!(json.contains("\"op\":\"sync\""));
        assert!(json.contains("\"opcode\":\"write\",\"bytes\":64"));
        assert!(json.contains("\"fault\":\"drop\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
