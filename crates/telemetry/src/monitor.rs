//! Declarative SLO rules over windowed series — the health monitor.
//!
//! A [`HealthMonitor`] evaluates a fixed rule set against each closed
//! [`SeriesWindow`] in simulated time, in the style of Clio's SLO-aware
//! runtime machinery: thresholds, rate-of-change guards and multi-window
//! burn-rate rules over any metric the registry carries. Alert
//! transitions (firing / resolved) surface as zero-width span events on
//! the cluster track, and [`HealthMonitor::report`] produces a final
//! [`HealthReport`] with per-rule worst-window attribution.
//!
//! # Rule grammar
//!
//! A selector is `<metric>[:<field>]` — the metric name as registered,
//! plus an optional histogram field (`count`, `sum`, `mean`, `min`,
//! `max`, `p50`, `p95`, `p99`). Without a field the selector reads the
//! counter's per-window delta, or — when no counter of that name exists
//! in the window — the gauge's value (carried forward across windows in
//! which it did not change). Rules combine a selector with a condition:
//!
//! * [`Rule::above`] / [`Rule::below`] — plain threshold on the window
//!   value;
//! * [`Rule::rate_of_change`] — fires when the value moves more than
//!   `max_delta` between consecutive windows (in either direction);
//! * [`Rule::burn_rate`] — multi-window error-budget burn: the value is
//!   divided by `budget_per_window`, and the rule fires when both the
//!   short- and the long-window average burn reach 1.0 — fast spikes are
//!   caught by the short window, sustained slow burns by the long one,
//!   and brief blips that the long average forgives do not page.
//!
//! `sustained(n)` requires `n` consecutive breaching windows before
//! firing; `critical()` marks the rule as an SLO gate (breach ⇒ non-zero
//! exit in `fig_health`). Evaluation is pure: the same series and rules
//! produce the same alerts, transitions and report bytes on every run
//! and at any `--jobs` count.

use crate::timeseries::{SeriesData, SeriesWindow};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Which per-window quantity of a metric a rule reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesField {
    /// Counter delta or gauge value (gauges carry forward).
    Value,
    /// Histogram: observations in the window.
    Count,
    /// Histogram: sum of observations in the window.
    Sum,
    /// Histogram: mean observation in the window.
    Mean,
    /// Histogram: smallest observation in the window.
    Min,
    /// Histogram: largest observation in the window.
    Max,
    /// Histogram: median of the window's observations.
    P50,
    /// Histogram: 95th percentile of the window's observations.
    P95,
    /// Histogram: 99th percentile of the window's observations.
    P99,
}

impl SeriesField {
    /// The grammar's field name.
    pub fn name(self) -> &'static str {
        match self {
            SeriesField::Value => "value",
            SeriesField::Count => "count",
            SeriesField::Sum => "sum",
            SeriesField::Mean => "mean",
            SeriesField::Min => "min",
            SeriesField::Max => "max",
            SeriesField::P50 => "p50",
            SeriesField::P95 => "p95",
            SeriesField::P99 => "p99",
        }
    }

    fn parse(s: &str) -> Option<SeriesField> {
        Some(match s {
            "value" => SeriesField::Value,
            "count" => SeriesField::Count,
            "sum" => SeriesField::Sum,
            "mean" => SeriesField::Mean,
            "min" => SeriesField::Min,
            "max" => SeriesField::Max,
            "p50" => SeriesField::P50,
            "p95" => SeriesField::P95,
            "p99" => SeriesField::P99,
            _ => return None,
        })
    }
}

/// What a rule reads from each window: a metric plus a field.
#[derive(Debug, Clone)]
pub struct Selector {
    /// Metric name as registered (after any shard prefixing).
    pub metric: String,
    /// The per-window quantity to read.
    pub field: SeriesField,
}

impl Selector {
    /// Parses `<metric>[:<field>]` (e.g. `kona.fetch_ns:p99`); the field
    /// defaults to `value`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown field name — selectors are written by the
    /// experiment author, so a typo should fail loudly.
    pub fn parse(s: &str) -> Selector {
        match s.rsplit_once(':') {
            Some((metric, field)) => Selector {
                metric: metric.to_string(),
                field: SeriesField::parse(field)
                    .unwrap_or_else(|| panic!("unknown series field {field:?} in selector {s:?}")),
            },
            None => Selector {
                metric: s.to_string(),
                field: SeriesField::Value,
            },
        }
    }

    /// The grammar form, `<metric>:<field>`.
    pub fn display(&self) -> String {
        format!("{}:{}", self.metric, self.field.name())
    }

    /// Reads this selector's value from `window`, consulting `gauges`
    /// (the carried-forward gauge state) for `Value` selectors with no
    /// counter delta in the window.
    fn read(&self, window: &SeriesWindow, gauges: &BTreeMap<String, f64>) -> f64 {
        match self.field {
            SeriesField::Value => {
                if let Some(v) = window.counters.get(&self.metric) {
                    *v as f64
                } else {
                    gauges.get(&self.metric).copied().unwrap_or(0.0)
                }
            }
            field => {
                let Some(h) = window.histograms.get(&self.metric) else {
                    return 0.0;
                };
                match field {
                    SeriesField::Count => h.count() as f64,
                    SeriesField::Sum => h.sum() as f64,
                    SeriesField::Mean => h.mean(),
                    SeriesField::Min => h.min() as f64,
                    SeriesField::Max => h.max() as f64,
                    SeriesField::P50 => h.p50() as f64,
                    SeriesField::P95 => h.p95() as f64,
                    SeriesField::P99 => h.p99() as f64,
                    SeriesField::Value => unreachable!(),
                }
            }
        }
    }
}

/// The condition a rule applies to its selector's per-window value.
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// Breaches when the value exceeds the limit.
    Above(f64),
    /// Breaches when the value falls below the limit.
    Below(f64),
    /// Breaches when the value moves more than `max_delta` between
    /// consecutive windows (either direction).
    RateOfChange {
        /// Largest tolerated window-to-window move.
        max_delta: f64,
    },
    /// Multi-window error-budget burn: breaches when both the short- and
    /// long-window average of `value / budget_per_window` reach 1.0.
    BurnRate {
        /// Budget per window; burn = value / budget.
        budget_per_window: f64,
        /// Windows in the fast average (spike detector).
        short_windows: usize,
        /// Windows in the slow average (sustained-burn detector).
        long_windows: usize,
    },
}

/// One declarative health rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name, shown in timelines and reports.
    pub name: String,
    /// What the rule reads each window.
    pub selector: Selector,
    /// The breach condition.
    pub kind: RuleKind,
    /// Consecutive breaching windows required before firing (≥ 1).
    pub for_windows: u32,
    /// Whether a breach constitutes an SLO violation (non-zero exit).
    pub critical: bool,
}

impl Rule {
    fn new(name: &str, selector: &str, kind: RuleKind) -> Rule {
        Rule {
            name: name.to_string(),
            selector: Selector::parse(selector),
            kind,
            for_windows: 1,
            critical: false,
        }
    }

    /// Threshold rule: breach when the value exceeds `limit`.
    pub fn above(name: &str, selector: &str, limit: f64) -> Rule {
        Rule::new(name, selector, RuleKind::Above(limit))
    }

    /// Threshold rule: breach when the value falls below `limit`.
    pub fn below(name: &str, selector: &str, limit: f64) -> Rule {
        Rule::new(name, selector, RuleKind::Below(limit))
    }

    /// Rate-of-change rule over consecutive windows.
    pub fn rate_of_change(name: &str, selector: &str, max_delta: f64) -> Rule {
        Rule::new(name, selector, RuleKind::RateOfChange { max_delta })
    }

    /// Multi-window burn-rate rule (see [`RuleKind::BurnRate`]).
    pub fn burn_rate(
        name: &str,
        selector: &str,
        budget_per_window: f64,
        short_windows: usize,
        long_windows: usize,
    ) -> Rule {
        Rule::new(
            name,
            selector,
            RuleKind::BurnRate {
                budget_per_window,
                short_windows: short_windows.max(1),
                long_windows: long_windows.max(1),
            },
        )
    }

    /// Requires `windows` consecutive breaching windows before firing.
    pub fn sustained(mut self, windows: u32) -> Rule {
        self.for_windows = windows.max(1);
        self
    }

    /// Marks the rule as an SLO gate.
    pub fn critical(mut self) -> Rule {
        self.critical = true;
        self
    }

    /// Whether lower values are worse for this rule (worst-window
    /// attribution tracks the minimum instead of the maximum).
    fn lower_is_worse(&self) -> bool {
        matches!(self.kind, RuleKind::Below(_))
    }
}

/// A firing or resolved transition emitted while evaluating one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertTransition {
    /// Index of the rule in the monitor's rule list.
    pub rule: usize,
    /// Window index at which the transition happened.
    pub window: u64,
    /// `true` for firing, `false` for resolved.
    pub firing: bool,
}

/// One alert episode: a rule fired and (maybe) resolved.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Name of the rule.
    pub rule: String,
    /// Window index at which the rule fired.
    pub fired_window: u64,
    /// Window index at which it resolved (`None` = still firing at end).
    pub resolved_window: Option<u64>,
    /// The worst window of the episode.
    pub worst_window: u64,
    /// The selector value in that window.
    pub worst_value: f64,
}

/// Final per-rule outcome.
#[derive(Debug, Clone)]
pub struct RuleOutcome {
    /// Name of the rule.
    pub rule: String,
    /// The selector in grammar form.
    pub selector: String,
    /// Whether this rule is an SLO gate.
    pub critical: bool,
    /// Number of alert episodes.
    pub fired: u64,
    /// Total windows spent firing.
    pub windows_firing: u64,
    /// The worst window across the whole run (breaching or not).
    pub worst_window: Option<u64>,
    /// The selector value in that window.
    pub worst_value: f64,
    /// Whether the rule was still firing when the run ended.
    pub still_firing: bool,
}

/// The monitor's end-of-run summary.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Window width in simulated nanoseconds.
    pub window_ns: u64,
    /// Number of windows evaluated (gap windows included).
    pub windows: u64,
    /// Every alert episode in firing order.
    pub alerts: Vec<Alert>,
    /// Per-rule outcomes, in rule order.
    pub rules: Vec<RuleOutcome>,
}

impl HealthReport {
    /// Whether any critical rule fired (the SLO gate).
    pub fn slo_breached(&self) -> bool {
        self.rules.iter().any(|r| r.critical && r.fired > 0)
    }

    /// Total alert episodes that fired.
    pub fn alerts_fired(&self) -> usize {
        self.alerts.len()
    }

    /// Alert episodes that fired and later resolved.
    pub fn alerts_resolved(&self) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.resolved_window.is_some())
            .count()
    }

    /// Serializes the report as a JSON document.
    pub fn to_json(&self) -> String {
        use crate::export::{json_escape, json_f64};
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"window_ns\": {},\n  \"windows\": {},\n  \"slo_breached\": {},\n  \"alerts\": [",
            self.window_ns,
            self.windows,
            self.slo_breached()
        );
        for (i, a) in self.alerts.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let resolved = match a.resolved_window {
                Some(w) => w.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": \"{}\", \"fired_window\": {}, \"resolved_window\": {resolved}, \
                 \"worst_window\": {}, \"worst_value\": {}}}",
                json_escape(&a.rule),
                a.fired_window,
                a.worst_window,
                json_f64(a.worst_value)
            );
        }
        out.push_str("\n  ],\n  \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let worst = match r.worst_window {
                Some(w) => w.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": \"{}\", \"selector\": \"{}\", \"critical\": {}, \
                 \"fired\": {}, \"windows_firing\": {}, \"worst_window\": {worst}, \
                 \"worst_value\": {}, \"still_firing\": {}}}",
                json_escape(&r.rule),
                json_escape(&r.selector),
                r.critical,
                r.fired,
                r.windows_firing,
                json_f64(r.worst_value),
                r.still_firing
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Per-rule evaluation state.
#[derive(Debug, Default)]
struct RuleState {
    firing: bool,
    breach_streak: u32,
    fired: u64,
    windows_firing: u64,
    /// Previous window's value (rate-of-change).
    prev: Option<f64>,
    /// Recent burn values, newest last (burn-rate long window).
    burns: VecDeque<f64>,
    /// Worst window across the whole run.
    worst: Option<(u64, f64)>,
    /// Worst window of the current episode.
    episode_worst: Option<(u64, f64)>,
    fired_window: u64,
    alerts: Vec<Alert>,
}

/// Evaluates a rule set over closed windows in simulated time.
#[derive(Debug)]
pub struct HealthMonitor {
    rules: Vec<Rule>,
    states: Vec<RuleState>,
    /// Carried-forward gauge values (delta encoding omits unchanged ones).
    gauge_carry: BTreeMap<String, f64>,
    /// Next expected window index; gaps are evaluated as empty windows so
    /// alerts resolve during quiet periods.
    next_index: Option<u64>,
    windows: u64,
}

impl HealthMonitor {
    /// A monitor evaluating `rules`.
    pub fn new(rules: Vec<Rule>) -> Self {
        let states = rules.iter().map(|_| RuleState::default()).collect();
        HealthMonitor {
            rules,
            states,
            gauge_carry: BTreeMap::new(),
            next_index: None,
            windows: 0,
        }
    }

    /// The rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluates one closed window (synthesizing empty windows for any
    /// index gap since the previous one) and returns the alert
    /// transitions it caused, in rule order.
    pub fn push(&mut self, window: &SeriesWindow) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        if let Some(next) = self.next_index {
            for idx in next..window.index {
                let empty = SeriesWindow::empty(idx);
                self.eval_one(&empty, &mut out);
            }
        }
        self.eval_one(window, &mut out);
        self.next_index = Some(window.index + 1);
        out
    }

    fn eval_one(&mut self, window: &SeriesWindow, out: &mut Vec<AlertTransition>) {
        self.windows += 1;
        for (name, v) in &window.gauges {
            self.gauge_carry.insert(name.clone(), *v);
        }
        for (i, rule) in self.rules.iter().enumerate() {
            let state = &mut self.states[i];
            let raw = rule.selector.read(window, &self.gauge_carry);
            let (breach, shown) = match &rule.kind {
                RuleKind::Above(limit) => (raw > *limit, raw),
                RuleKind::Below(limit) => (raw < *limit, raw),
                RuleKind::RateOfChange { max_delta } => {
                    let delta = state.prev.map_or(0.0, |p| raw - p);
                    state.prev = Some(raw);
                    (delta.abs() > *max_delta, delta)
                }
                RuleKind::BurnRate {
                    budget_per_window,
                    short_windows,
                    long_windows,
                } => {
                    let burn = if *budget_per_window > 0.0 {
                        raw / budget_per_window
                    } else {
                        raw
                    };
                    state.burns.push_back(burn);
                    while state.burns.len() > *long_windows {
                        state.burns.pop_front();
                    }
                    let avg = |n: usize| {
                        let take = n.min(state.burns.len());
                        let sum: f64 = state.burns.iter().rev().take(take).sum();
                        sum / take.max(1) as f64
                    };
                    let short = avg(*short_windows);
                    let long = avg(*long_windows);
                    (short >= 1.0 && long >= 1.0, burn)
                }
            };
            // Worst-window attribution over the whole run.
            let worse = |old: f64| {
                if rule.lower_is_worse() {
                    shown < old
                } else {
                    shown > old
                }
            };
            if state.worst.is_none_or(|(_, old)| worse(old)) {
                state.worst = Some((window.index, shown));
            }
            if breach {
                state.breach_streak += 1;
                if state.episode_worst.is_none_or(|(_, old)| worse(old)) {
                    state.episode_worst = Some((window.index, shown));
                }
                if !state.firing && state.breach_streak >= rule.for_windows {
                    state.firing = true;
                    state.fired += 1;
                    state.fired_window = window.index;
                    out.push(AlertTransition {
                        rule: i,
                        window: window.index,
                        firing: true,
                    });
                }
            } else {
                state.breach_streak = 0;
                if state.firing {
                    state.firing = false;
                    let (ww, wv) = state.episode_worst.take().unwrap_or((window.index, shown));
                    state.alerts.push(Alert {
                        rule: rule.name.clone(),
                        fired_window: state.fired_window,
                        resolved_window: Some(window.index),
                        worst_window: ww,
                        worst_value: wv,
                    });
                    out.push(AlertTransition {
                        rule: i,
                        window: window.index,
                        firing: false,
                    });
                } else {
                    state.episode_worst = None;
                }
            }
            if state.firing {
                state.windows_firing += 1;
            }
        }
    }

    /// Builds the end-of-run report. Non-destructive: episodes still
    /// firing appear as unresolved alerts, and evaluation may continue
    /// afterwards.
    pub fn report(&self, window_ns: u64) -> HealthReport {
        let mut alerts = Vec::new();
        let mut rules = Vec::new();
        for (rule, state) in self.rules.iter().zip(&self.states) {
            alerts.extend(state.alerts.iter().cloned());
            if state.firing {
                let (ww, wv) = state
                    .episode_worst
                    .unwrap_or((state.fired_window, f64::NAN));
                alerts.push(Alert {
                    rule: rule.name.clone(),
                    fired_window: state.fired_window,
                    resolved_window: None,
                    worst_window: ww,
                    worst_value: wv,
                });
            }
            rules.push(RuleOutcome {
                rule: rule.name.clone(),
                selector: rule.selector.display(),
                critical: rule.critical,
                fired: state.fired,
                windows_firing: state.windows_firing,
                worst_window: state.worst.map(|(w, _)| w),
                worst_value: state.worst.map_or(0.0, |(_, v)| v),
                still_firing: state.firing,
            });
        }
        alerts.sort_by_key(|a| a.fired_window);
        HealthReport {
            window_ns,
            windows: self.windows,
            alerts,
            rules,
        }
    }

    /// Convenience: evaluates `rules` over a complete series offline.
    pub fn evaluate(rules: Vec<Rule>, series: &SeriesData) -> HealthReport {
        let mut mon = HealthMonitor::new(rules);
        for w in &series.windows {
            mon.push(w);
        }
        mon.report(series.window_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(index: u64, ops: u64) -> SeriesWindow {
        let mut w = SeriesWindow::empty(index);
        if ops > 0 {
            w.counters.insert("ops".to_string(), ops);
        }
        w
    }

    #[test]
    fn selector_grammar() {
        let s = Selector::parse("kona.fetch_ns:p99");
        assert_eq!(s.metric, "kona.fetch_ns");
        assert_eq!(s.field, SeriesField::P99);
        assert_eq!(s.display(), "kona.fetch_ns:p99");
        let v = Selector::parse("net.wire_bytes");
        assert_eq!(v.field, SeriesField::Value);
    }

    #[test]
    fn threshold_fires_and_resolves_with_worst_attribution() {
        let mut mon = HealthMonitor::new(vec![Rule::above("busy", "ops", 10.0)]);
        let mut tr = Vec::new();
        for (i, ops) in [(0, 5), (1, 20), (2, 50), (3, 15), (4, 2)] {
            tr.extend(mon.push(&window(i, ops)));
        }
        assert_eq!(
            tr,
            vec![
                AlertTransition { rule: 0, window: 1, firing: true },
                AlertTransition { rule: 0, window: 4, firing: false },
            ]
        );
        let report = mon.report(100);
        assert_eq!(report.alerts.len(), 1);
        let a = &report.alerts[0];
        assert_eq!(a.fired_window, 1);
        assert_eq!(a.resolved_window, Some(4));
        assert_eq!(a.worst_window, 2);
        assert_eq!(a.worst_value, 50.0);
        assert!(!report.slo_breached(), "non-critical rule");
        assert_eq!(report.alerts_resolved(), 1);
    }

    #[test]
    fn gap_windows_resolve_alerts() {
        let mut mon = HealthMonitor::new(vec![Rule::above("busy", "ops", 10.0)]);
        mon.push(&window(0, 20));
        // Next real window is 5: indices 1..4 evaluate as empty, so the
        // alert resolves at window 1, not window 5.
        let tr = mon.push(&window(5, 20));
        assert!(tr.contains(&AlertTransition { rule: 0, window: 1, firing: false }));
        assert!(tr.contains(&AlertTransition { rule: 0, window: 5, firing: true }));
        assert_eq!(mon.report(100).windows, 6);
    }

    #[test]
    fn sustained_requires_streak_and_unresolved_alerts_reported() {
        let mut mon =
            HealthMonitor::new(vec![Rule::above("busy", "ops", 10.0).sustained(2).critical()]);
        assert!(mon.push(&window(0, 20)).is_empty(), "streak of one");
        let tr = mon.push(&window(1, 30));
        assert_eq!(tr.len(), 1);
        assert!(tr[0].firing);
        let report = mon.report(100);
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.alerts[0].resolved_window, None);
        assert!(report.rules[0].still_firing);
        assert!(report.slo_breached());
    }

    #[test]
    fn gauges_carry_forward_across_delta_windows() {
        let mut mon = HealthMonitor::new(vec![Rule::above("deep", "queue.depth", 5.0)]);
        let mut w0 = SeriesWindow::empty(0);
        w0.gauges.insert("queue.depth".to_string(), 9.0);
        mon.push(&w0);
        // Window 1 omits the gauge (unchanged); the carried value still
        // breaches.
        mon.push(&SeriesWindow::empty(1));
        let report = mon.report(100);
        assert_eq!(report.rules[0].windows_firing, 2);
    }

    #[test]
    fn rate_of_change_detects_surges() {
        let mut mon = HealthMonitor::new(vec![Rule::rate_of_change("surge", "ops", 15.0)]);
        let mut tr = Vec::new();
        for (i, ops) in [(0, 10), (1, 12), (2, 60), (3, 58)] {
            tr.extend(mon.push(&window(i, ops)));
        }
        assert_eq!(
            tr,
            vec![
                AlertTransition { rule: 0, window: 2, firing: true },
                AlertTransition { rule: 0, window: 3, firing: false },
            ]
        );
        // Worst value is the delta, not the raw value.
        assert_eq!(mon.report(100).alerts[0].worst_value, 48.0);
    }

    #[test]
    fn burn_rate_needs_short_and_long_windows_hot() {
        let rule = Rule::burn_rate("burn", "ops", 10.0, 1, 4);
        let mut mon = HealthMonitor::new(vec![rule]);
        // One hot window: short avg is 2.0 but long avg is 2.0 too (only
        // one sample) — fires immediately, then the long window cools.
        let mut tr = mon.push(&window(0, 20));
        assert_eq!(tr.len(), 1, "short+long hot");
        for i in 1..4 {
            tr.extend(mon.push(&window(i, 0)));
        }
        assert!(tr.iter().any(|t| !t.firing), "cooled off");
        // Sustained burn just above budget keeps it firing.
        let mut mon = HealthMonitor::new(vec![Rule::burn_rate("burn", "ops", 10.0, 1, 4)]);
        let mut fired = false;
        for i in 0..6 {
            fired |= mon.push(&window(i, 12)).iter().any(|t| t.firing);
        }
        assert!(fired);
        assert!(mon.report(100).rules[0].still_firing);
    }

    #[test]
    fn report_json_shape() {
        let mut mon = HealthMonitor::new(vec![Rule::above("busy", "ops", 10.0).critical()]);
        mon.push(&window(0, 20));
        mon.push(&window(1, 0));
        let json = mon.report(100).to_json();
        assert!(json.contains("\"slo_breached\": true"));
        assert!(json.contains("\"rule\": \"busy\""));
        assert!(json.contains("\"resolved_window\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn evaluate_is_deterministic() {
        let mut series = SeriesData::new(100);
        for i in 0..5 {
            series.windows.push(window(i, if i == 2 { 50 } else { 1 }));
        }
        let rules = || vec![Rule::above("busy", "ops", 10.0), Rule::rate_of_change("surge", "ops", 20.0)];
        let a = HealthMonitor::evaluate(rules(), &series).to_json();
        let b = HealthMonitor::evaluate(rules(), &series).to_json();
        assert_eq!(a, b);
    }
}
