//! Typed span events on the simulated timeline.
//!
//! A [`SpanEvent`] is one interval of simulated time attributed to a
//! [`Track`]. The two tracks mirror the paper's concurrency model: the
//! application thread accrues `app_time` while the eviction handler and
//! completion poller accrue `background_time`, and wall time is the
//! maximum of the two.

use kona_types::Nanos;

/// The simulated thread a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The application thread (allocations, loads, stores, faults).
    App,
    /// The background machinery: eviction handler, poller, prefetcher.
    Background,
}

impl Track {
    /// A stable display name (also the Chrome-trace thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::App => "application",
            Track::Background => "eviction/poller",
        }
    }
}

/// RDMA verb opcodes, mirrored here so telemetry does not depend on the
/// network crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerbOpcode {
    /// One-sided read.
    Read,
    /// One-sided write.
    Write,
    /// Two-sided send.
    Send,
}

impl VerbOpcode {
    /// Lower-case stable name used in metric keys and trace output.
    pub fn name(self) -> &'static str {
        match self {
            VerbOpcode::Read => "read",
            VerbOpcode::Write => "write",
            VerbOpcode::Send => "send",
        }
    }
}

/// What happened during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A page was fetched from a memory node into the local cache.
    RemoteFetch,
    /// A victim page left the local cache through the eviction handler.
    Evict,
    /// Dirty data was shipped to its remote home (cache-line log flush).
    Writeback,
    /// A major or minor page fault in a VM-based baseline.
    PageFault,
    /// A TLB shootdown (remote core invalidation) in a VM baseline.
    TlbShootdown,
    /// The FPGA prefetcher pulled a page ahead of the access stream.
    Prefetch,
    /// An explicit runtime sync/flush requested by the application.
    Sync,
    /// A posted RDMA verb chain.
    Verb {
        /// Leading opcode of the chain.
        opcode: VerbOpcode,
        /// Bytes moved on the wire.
        bytes: u64,
    },
}

impl EventKind {
    /// A stable snake_case name (the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RemoteFetch => "remote_fetch",
            EventKind::Evict => "evict",
            EventKind::Writeback => "writeback",
            EventKind::PageFault => "page_fault",
            EventKind::TlbShootdown => "tlb_shootdown",
            EventKind::Prefetch => "prefetch",
            EventKind::Sync => "sync",
            EventKind::Verb { .. } => "verb",
        }
    }
}

/// One interval of simulated time on a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which simulated thread the span belongs to.
    pub track: Track,
    /// Start of the span on that thread's simulated clock.
    pub start: Nanos,
    /// Duration of the span.
    pub duration: Nanos,
    /// What happened.
    pub kind: EventKind,
}

impl SpanEvent {
    /// Builds a span.
    pub fn new(track: Track, start: Nanos, duration: Nanos, kind: EventKind) -> Self {
        SpanEvent {
            track,
            start,
            duration,
            kind,
        }
    }

    /// End of the span (`start + duration`).
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Track::App.name(), "application");
        assert_eq!(Track::Background.name(), "eviction/poller");
        assert_eq!(EventKind::RemoteFetch.name(), "remote_fetch");
        assert_eq!(
            EventKind::Verb {
                opcode: VerbOpcode::Write,
                bytes: 64
            }
            .name(),
            "verb"
        );
        assert_eq!(VerbOpcode::Send.name(), "send");
    }

    #[test]
    fn span_end() {
        let s = SpanEvent::new(
            Track::App,
            Nanos::from_ns(10),
            Nanos::from_ns(5),
            EventKind::Sync,
        );
        assert_eq!(s.end(), Nanos::from_ns(15));
    }
}
