//! Typed span events on the simulated timeline.
//!
//! A [`SpanEvent`] is one interval of simulated time attributed to a
//! [`Track`]. The tracks mirror the paper's concurrency model: the
//! application thread accrues `app_time` while the eviction handler and
//! completion poller accrue `background_time`, and wall time is the
//! maximum of the two. The network track carries verb-level detail and
//! fault markers; its spans are charged to whichever thread posted them.
//!
//! Since PR 4 every span also carries causal identity: the [`TraceId`] of
//! the top-level operation it belongs to and a [`SpanId`]/parent link that
//! turns a trace's spans into a tree (see `trace.rs`).

use kona_types::Nanos;

/// The simulated thread a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The application thread (allocations, loads, stores, faults).
    App,
    /// The background machinery: eviction handler, poller, prefetcher.
    Background,
    /// The network fabric: posted verb chains and injected faults. Spans
    /// here are *charged* to the thread that posted them (see `trace.rs`).
    Net,
    /// The cluster control plane and memory-node runtimes: log apply and
    /// compaction on the remote CPUs, slab migration, rebalancing and
    /// re-replication. Charged as background work (see `trace.rs`).
    Cluster,
}

impl Track {
    /// A stable display name (also the Chrome-trace thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::App => "application",
            Track::Background => "eviction/poller",
            Track::Net => "network",
            Track::Cluster => "cluster",
        }
    }
}

/// Identity of one top-level traced operation (app access, sync, eviction
/// batch, prefetch, MCE recovery). `0` means "not part of a trace".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "untraced" sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is a real trace id (nonzero).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Identity of one span within a telemetry session. `0` means "no span"
/// (used as the parent of root spans). Ids are allocated monotonically
/// per [`Telemetry`](crate::Telemetry) instance, so replays and per-worker
/// runs are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The "no parent" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real span id (nonzero).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// RDMA verb opcodes, mirrored here so telemetry does not depend on the
/// network crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerbOpcode {
    /// One-sided read.
    Read,
    /// One-sided write.
    Write,
    /// Two-sided send.
    Send,
}

impl VerbOpcode {
    /// Lower-case stable name used in metric keys and trace output.
    pub fn name(self) -> &'static str {
        match self {
            VerbOpcode::Read => "read",
            VerbOpcode::Write => "write",
            VerbOpcode::Send => "send",
        }
    }
}

/// Injected-fault flavours, mirrored from `kona_net::fault` so timelines
/// can mark faults without a dependency on the network crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The verb was silently dropped on the wire.
    Dropped,
    /// The verb arrived corrupted and was rejected.
    Corrupted,
    /// The verb timed out waiting for a completion.
    TimedOut,
    /// The target node was down (flap or crash) when the chain was posted.
    NodeDown,
}

impl FaultKind {
    /// Lower-case stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropped => "drop",
            FaultKind::Corrupted => "corrupt",
            FaultKind::TimedOut => "timeout",
            FaultKind::NodeDown => "node_down",
        }
    }
}

/// What happened during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Root of one application access (load or store) trace.
    AppAccess,
    /// The access was satisfied by the CPU cache / local DRAM.
    LocalHit,
    /// Line fill from FMem into the CPU cache (the "FMem hit" cost).
    FmemFill,
    /// A page was fetched from a memory node into the local cache.
    RemoteFetch,
    /// A victim page left the local cache through the eviction handler.
    Evict,
    /// Dirty data was shipped to its remote home (cache-line log flush).
    Writeback,
    /// A cache-line log flush batch (degraded-mode chained flush).
    Flush,
    /// Dirty-bitmap scan at the start of an eviction.
    BitmapScan,
    /// One gathered-segment copy (AVX or DMA) during eviction.
    SegmentCopy,
    /// Retry backoff charged after a transient verb failure.
    Backoff,
    /// A major or minor page fault in a VM-based baseline, or the page
    /// fault taken by the `PageFaultFallback` recovery policy.
    PageFault,
    /// A TLB shootdown (remote core invalidation) in a VM baseline.
    TlbShootdown,
    /// The FPGA prefetcher pulled a page ahead of the access stream.
    Prefetch,
    /// An explicit runtime sync/flush requested by the application.
    Sync,
    /// A posted RDMA verb chain.
    Verb {
        /// Leading opcode of the chain.
        opcode: VerbOpcode,
        /// Bytes moved on the wire.
        bytes: u64,
    },
    /// A memory-node runtime applied a batch of log entries into its page
    /// store (remote-CPU work on the Cluster track).
    LogApply,
    /// The log-compaction worker deduplicated same-line entries or folded
    /// a hot page's backlog into a full-page image.
    Compaction,
    /// A slab's bytes moved to a new home node (migration or
    /// re-replication after a permanent node loss).
    Migration,
    /// A cluster rebalance pass triggered by capacity skew.
    Rebalance,
    /// Instant: the FPGA missed FMem and escalated to a remote fetch.
    FmemLookup,
    /// Instant: the FPGA translated a local page to its remote home.
    Translate,
    /// Instant: the FPGA prefetcher suggested pages to pull.
    PrefetchHint,
    /// Instant: a machine-check event was raised for a lost node.
    Mce,
    /// Instant: an injected network fault fired (shown on the Net track).
    Fault(FaultKind),
    /// Instant: a health-monitor rule started firing (payload: rule index
    /// in the installed rule set).
    AlertFiring(u16),
    /// Instant: a firing health-monitor rule resolved.
    AlertResolved(u16),
}

impl EventKind {
    /// A stable snake_case name (the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::AppAccess => "app_access",
            EventKind::LocalHit => "local_hit",
            EventKind::FmemFill => "fmem_fill",
            EventKind::RemoteFetch => "remote_fetch",
            EventKind::Evict => "evict",
            EventKind::Writeback => "writeback",
            EventKind::Flush => "flush",
            EventKind::BitmapScan => "bitmap_scan",
            EventKind::SegmentCopy => "segment_copy",
            EventKind::Backoff => "backoff",
            EventKind::PageFault => "page_fault",
            EventKind::TlbShootdown => "tlb_shootdown",
            EventKind::Prefetch => "prefetch",
            EventKind::Sync => "sync",
            EventKind::Verb { .. } => "verb",
            EventKind::LogApply => "log_apply",
            EventKind::Compaction => "compaction",
            EventKind::Migration => "migration",
            EventKind::Rebalance => "rebalance",
            EventKind::FmemLookup => "fmem_lookup",
            EventKind::Translate => "translate",
            EventKind::PrefetchHint => "prefetch_hint",
            EventKind::Mce => "mce",
            EventKind::Fault(_) => "fault",
            EventKind::AlertFiring(_) => "alert_firing",
            EventKind::AlertResolved(_) => "alert_resolved",
        }
    }
}

/// One interval of simulated time on a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which simulated thread the span belongs to.
    pub track: Track,
    /// Start of the span on that thread's simulated clock.
    pub start: Nanos,
    /// Duration of the span (zero for instant markers).
    pub duration: Nanos,
    /// What happened.
    pub kind: EventKind,
    /// The top-level operation this span belongs to (NONE if untraced).
    pub trace: TraceId,
    /// This span's identity (NONE for legacy `record()` callers).
    pub span: SpanId,
    /// The enclosing span (NONE for roots and untraced spans).
    pub parent: SpanId,
}

impl SpanEvent {
    /// Builds a causally unlinked span (trace/span/parent all NONE) —
    /// the pre-PR-4 constructor, still used by the VM baselines.
    pub fn new(track: Track, start: Nanos, duration: Nanos, kind: EventKind) -> Self {
        SpanEvent {
            track,
            start,
            duration,
            kind,
            trace: TraceId::NONE,
            span: SpanId::NONE,
            parent: SpanId::NONE,
        }
    }

    /// End of the span (`start + duration`).
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }

    /// Whether this is an instant marker rather than an interval.
    pub fn is_instant(&self) -> bool {
        self.duration == Nanos::ZERO
            && matches!(
                self.kind,
                EventKind::Fault(_)
                    | EventKind::Mce
                    | EventKind::FmemLookup
                    | EventKind::Translate
                    | EventKind::PrefetchHint
                    | EventKind::AlertFiring(_)
                    | EventKind::AlertResolved(_)
            )
    }
}

/// Deterministically merges per-shard span streams into one timeline:
/// ascending span start time, ties broken by stream index, and within one
/// stream the original emission order is preserved. Used by the sharded
/// engine so the merged trace never depends on which worker thread
/// finished first (give each stream a distinct
/// [`Telemetry::set_trace_id_base`](crate::Telemetry::set_trace_id_base)
/// so trace ids stay globally unique).
pub fn merge_span_streams(streams: Vec<Vec<SpanEvent>>) -> Vec<SpanEvent> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut tagged: Vec<(Nanos, usize, usize, SpanEvent)> = Vec::with_capacity(total);
    for (stream, events) in streams.into_iter().enumerate() {
        for (pos, event) in events.into_iter().enumerate() {
            tagged.push((event.start, stream, pos, event));
        }
    }
    tagged.sort_by_key(|&(start, stream, pos, _)| (start, stream, pos));
    tagged.into_iter().map(|(_, _, _, event)| event).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Track::App.name(), "application");
        assert_eq!(Track::Background.name(), "eviction/poller");
        assert_eq!(Track::Net.name(), "network");
        assert_eq!(Track::Cluster.name(), "cluster");
        assert_eq!(EventKind::RemoteFetch.name(), "remote_fetch");
        assert_eq!(EventKind::LogApply.name(), "log_apply");
        assert_eq!(EventKind::Compaction.name(), "compaction");
        assert_eq!(EventKind::Migration.name(), "migration");
        assert_eq!(EventKind::Rebalance.name(), "rebalance");
        assert_eq!(EventKind::AppAccess.name(), "app_access");
        assert_eq!(EventKind::Fault(FaultKind::Dropped).name(), "fault");
        assert_eq!(EventKind::AlertFiring(0).name(), "alert_firing");
        assert_eq!(EventKind::AlertResolved(3).name(), "alert_resolved");
        assert_eq!(FaultKind::NodeDown.name(), "node_down");
        assert_eq!(
            EventKind::Verb {
                opcode: VerbOpcode::Write,
                bytes: 64
            }
            .name(),
            "verb"
        );
        assert_eq!(VerbOpcode::Send.name(), "send");
    }

    #[test]
    fn span_end() {
        let s = SpanEvent::new(
            Track::App,
            Nanos::from_ns(10),
            Nanos::from_ns(5),
            EventKind::Sync,
        );
        assert_eq!(s.end(), Nanos::from_ns(15));
        assert_eq!(s.trace, TraceId::NONE);
        assert_eq!(s.parent, SpanId::NONE);
        assert!(!s.is_instant());
    }

    #[test]
    fn instants_are_zero_width_markers() {
        let i = SpanEvent::new(
            Track::Net,
            Nanos::from_ns(7),
            Nanos::ZERO,
            EventKind::Fault(FaultKind::TimedOut),
        );
        assert!(i.is_instant());
        // A zero-width interval kind is still not an instant marker.
        let z = SpanEvent::new(Track::App, Nanos::ZERO, Nanos::ZERO, EventKind::Sync);
        assert!(!z.is_instant());
    }
}
