//! Span recorders: where [`SpanEvent`]s go.
//!
//! The default [`NoopRecorder`] discards everything, so instrumented code
//! pays one virtual call and nothing else. The [`TraceRecorder`] keeps
//! the most recent events in a fixed-capacity ring buffer for export to
//! the Chrome trace-event format (see [`crate::export`]).

use crate::event::SpanEvent;
use std::collections::VecDeque;

/// A sink for span events.
pub trait Recorder {
    /// Accepts one span.
    fn record(&mut self, event: SpanEvent);

    /// Whether spans are actually kept. Callers may skip building
    /// expensive events when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }

    /// The retained events in chronological (insertion) order. Recorders
    /// that discard events return an empty vec.
    fn events(&self) -> Vec<SpanEvent> {
        Vec::new()
    }

    /// Events dropped due to capacity limits.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every span (the near-zero-overhead default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&mut self, _event: SpanEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Keeps the most recent spans in a ring buffer.
///
/// When full, the oldest span is dropped and counted, so a long run still
/// exports a valid (suffix) timeline.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    ring: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Default ring capacity (spans).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A recorder holding up to `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(Self::DEFAULT_CAPACITY)
    }
}

impl Recorder for TraceRecorder {
    fn record(&mut self, event: SpanEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    fn events(&self) -> Vec<SpanEvent> {
        self.ring.iter().copied().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Track};
    use kona_types::Nanos;

    fn span(i: u64) -> SpanEvent {
        SpanEvent::new(
            Track::App,
            Nanos::from_ns(i),
            Nanos::from_ns(1),
            EventKind::Sync,
        )
    }

    #[test]
    fn noop_discards() {
        let mut r = NoopRecorder;
        r.record(span(1));
        assert!(!r.is_enabled());
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = TraceRecorder::new(3);
        for i in 0..5 {
            r.record(span(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.events().iter().map(|e| e.start.as_ns()).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_clamped() {
        let mut r = TraceRecorder::new(0);
        r.record(span(9));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
