//! Counters, gauges and log-bucketed histograms behind a registry.
//!
//! Handles returned by the registry are pre-resolved `Rc` cells, so hot
//! paths bump a counter with one pointer chase and no string lookup. The
//! registry itself is cheap enough to stay always-on: the runtimes derive
//! their public `RuntimeStats` from it.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A floating-point metric that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Sub-buckets per power-of-two octave (16 ⇒ ≤6.25% relative error).
const SUB: usize = 16;
const SUB_BITS: u32 = SUB.trailing_zeros(); // 4
/// Total buckets covering the full `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Index of the log-linear bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) as usize) - SUB;
        ((msb - SUB_BITS + 1) as usize) * SUB + sub
    }
}

/// Lower bound of bucket `i` (its representative value).
fn bucket_value(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let octave = (i / SUB) as u32 - 1;
        let sub = (i % SUB) as u64;
        (SUB as u64 + sub) << octave
    }
}

/// The bucketed data behind a [`Histogram`] handle.
#[derive(Debug, Clone)]
pub struct HistogramData {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramData {
    /// An empty histogram.
    pub fn new() -> Self {
        HistogramData {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the representative (lower
    /// bound) of the first bucket whose cumulative count reaches
    /// `q * count`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Exact endpoints beat bucket representatives.
                return Some(if i == bucket_index(self.max) {
                    self.max
                } else if i == bucket_index(self.min) {
                    self.min.max(bucket_value(i))
                } else {
                    bucket_value(i)
                });
            }
        }
        Some(self.max)
    }

    /// Median (`quantile(0.5)`), or 0 when empty.
    pub fn p50(&self) -> u64 {
        self.quantile(0.5).unwrap_or(0)
    }

    /// 95th percentile, or 0 when empty.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95).unwrap_or(0)
    }

    /// 99th percentile, or 0 when empty.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// Adds `other`'s observations into `self`. Bucket-wise addition,
    /// so merging is exact, commutative and associative.
    pub fn merge(&mut self, other: &HistogramData) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The observations recorded since `base`, where `base` is an earlier
    /// snapshot of this same histogram (bucket counts subtract per bucket).
    /// `count` and `sum` are exact; `min`/`max` are exact when the running
    /// extreme falls inside the delta's boundary buckets and bucket lower
    /// bounds otherwise (≤6.25% relative error, same as quantiles).
    pub fn delta_since(&self, base: &HistogramData) -> HistogramData {
        let count = self.count.saturating_sub(base.count);
        if count == 0 {
            return HistogramData::new();
        }
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&base.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let (Some(first), Some(last)) = (
            counts.iter().position(|&c| c > 0),
            counts.iter().rposition(|&c| c > 0),
        ) else {
            return HistogramData::new();
        };
        let min = if bucket_index(self.min) == first {
            self.min
        } else {
            bucket_value(first)
        };
        let max = if bucket_index(self.max) == last {
            self.max
        } else {
            bucket_value(last)
        };
        HistogramData {
            counts,
            count,
            sum: self.sum.saturating_sub(base.sum),
            min,
            max,
        }
    }
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData::new()
    }
}

/// A shared handle to a registered histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<HistogramData>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Reads through to the data (count, quantiles, ...).
    pub fn with<T>(&self, f: impl FnOnce(&HistogramData) -> T) -> T {
        f(&self.0.borrow())
    }

    /// A deep copy of the bucketed data.
    pub fn data(&self) -> HistogramData {
        self.0.borrow().clone()
    }
}

/// A name-keyed collection of counters, gauges and histograms.
///
/// `counter`/`gauge`/`histogram` get-or-create, so independent components
/// can share a metric by name.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    /// Cache of composed `{prefix}{id}.{suffix}` names, so per-instance
    /// metrics (e.g. `cluster.node3.backlog_bytes`) format once and every
    /// later resolution is allocation-free.
    interned: BTreeMap<(&'static str, u32, &'static str), String>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created at zero if absent. Resolving an
    /// existing name never allocates.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some(c) = self.counters.get(name) {
            return c.clone();
        }
        self.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created at zero if absent. Resolving an
    /// existing name never allocates.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.get(name) {
            return g.clone();
        }
        self.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty if absent. Resolving an
    /// existing name never allocates.
    pub fn histogram(&mut self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.get(name) {
            return h.clone();
        }
        self.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Composes `{prefix}{id}.{suffix}` at most once per triple, returning
    /// the interned full name.
    fn intern(&mut self, prefix: &'static str, id: u32, suffix: &'static str) -> &str {
        self.interned
            .entry((prefix, id, suffix))
            .or_insert_with(|| format!("{prefix}{id}.{suffix}"))
    }

    /// The counter named `{prefix}{id}.{suffix}` (e.g. `("cluster.node",
    /// 3, "applied")` → `cluster.node3.applied`). The composed name is
    /// interned, so hot re-registration never formats or allocates.
    pub fn counter_interned(&mut self, prefix: &'static str, id: u32, suffix: &'static str) -> Counter {
        if let Some(name) = self.interned.get(&(prefix, id, suffix)) {
            if let Some(c) = self.counters.get(name.as_str()) {
                return c.clone();
            }
        }
        let name = self.intern(prefix, id, suffix).to_string();
        self.counters.entry(name).or_default().clone()
    }

    /// The gauge named `{prefix}{id}.{suffix}`, with the same interning
    /// behaviour as [`Registry::counter_interned`].
    pub fn gauge_interned(&mut self, prefix: &'static str, id: u32, suffix: &'static str) -> Gauge {
        if let Some(name) = self.interned.get(&(prefix, id, suffix)) {
            if let Some(g) = self.gauges.get(name.as_str()) {
                return g.clone();
            }
        }
        let name = self.intern(prefix, id, suffix).to_string();
        self.gauges.entry(name).or_default().clone()
    }

    /// The histogram named `{prefix}{id}.{suffix}`, with the same
    /// interning behaviour as [`Registry::counter_interned`].
    pub fn histogram_interned(
        &mut self,
        prefix: &'static str,
        id: u32,
        suffix: &'static str,
    ) -> Histogram {
        if let Some(name) = self.interned.get(&(prefix, id, suffix)) {
            if let Some(h) = self.histograms.get(name.as_str()) {
                return h.clone();
            }
        }
        let name = self.intern(prefix, id, suffix).to_string();
        self.histograms.entry(name).or_default().clone()
    }

    /// The current value of counter `name`, or 0 if absent.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Adds every metric of `other` into `self`: counters add, gauges
    /// take `other`'s value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Registry) {
        for (name, c) in &other.counters {
            self.counter(name).add(c.get());
        }
        for (name, g) in &other.gauges {
            self.gauge(name).set(g.get());
        }
        for (name, h) in &other.histograms {
            let mine = self.histogram(name);
            h.with(|data| mine.0.borrow_mut().merge(data));
        }
    }

    /// A deep, `Send`-able copy of every metric, for shipping a worker
    /// thread's registry back to the coordinating thread. Unlike
    /// [`Registry::snapshot`], histograms keep their full bucket data, so
    /// [`Registry::absorb`] merges are exact.
    pub fn dump(&self) -> MetricsDump {
        MetricsDump {
            counters: self.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: self.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.data()))
                .collect(),
        }
    }

    /// Merges a worker's [`MetricsDump`] into this registry: counters add,
    /// gauges take the dump's value, histograms merge bucket-wise (exact).
    pub fn absorb(&mut self, dump: &MetricsDump) {
        for (name, v) in &dump.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &dump.gauges {
            self.gauge(name).set(*v);
        }
        for (name, data) in &dump.histograms {
            let mine = self.histogram(name);
            mine.0.borrow_mut().merge(data);
        }
    }

    /// A point-in-time copy of every metric, ready for export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.with(HistogramSummary::of)))
                .collect(),
        }
    }
}

/// A deep copy of a [`Registry`]'s metrics that is `Send`, produced by
/// [`Registry::dump`] and consumed by [`Registry::absorb`].
///
/// [`Telemetry`](crate::Telemetry) handles are `Rc`-based and cannot cross
/// threads; the parallel experiment engine gives each worker its own
/// registry and ships one of these back per task, merged on the
/// coordinating thread in input order so aggregate metrics are identical
/// to a sequential run.
#[derive(Debug, Clone, Default)]
pub struct MetricsDump {
    /// `(name, value)` for every counter.
    pub counters: BTreeMap<String, u64>,
    /// `(name, value)` for every gauge.
    pub gauges: BTreeMap<String, f64>,
    /// `(name, bucket data)` for every histogram.
    pub histograms: BTreeMap<String, HistogramData>,
}

/// Exported summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Saturating sum.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Summarizes `data`.
    pub fn of(data: &HistogramData) -> Self {
        HistogramSummary {
            count: data.count(),
            sum: data.sum(),
            min: data.min(),
            max: data.max(),
            mean: data.mean(),
            p50: data.p50(),
            p95: data.p95(),
            p99: data.p99(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, or `None` if absent.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, or `None` if absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The summary of histogram `name`, or `None` if absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// The subset of metrics whose names start with `prefix`, preserving
    /// order. Per-instance metric families share a name prefix (e.g.
    /// `tenant.3.` or `cluster.node0.`), so this is how attribution
    /// tables pull one instance's rows out of the shared registry.
    pub fn with_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_handles_share_state() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(reg.counter_value("missing"), 0);
        let g = reg.gauge("ratio");
        g.set(0.5);
        assert_eq!(reg.gauge("ratio").get(), 0.5);
    }

    #[test]
    fn bucket_index_monotone_and_invertible() {
        let mut prev = 0;
        for v in [0u64, 1, 5, 15, 16, 17, 31, 32, 100, 1_000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            // The representative never exceeds the value, and the value
            // fits inside the bucket's span.
            assert!(bucket_value(i) <= v);
            if i + 1 < BUCKETS {
                assert!(bucket_value(i + 1) > v, "value {v} beyond bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_lookup() {
        let mut reg = Registry::new();
        reg.counter("a").add(7);
        reg.gauge("g").set(1.25);
        reg.histogram("h").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(7));
        assert_eq!(snap.gauge("g"), Some(1.25));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("nope"), None);
    }

    #[test]
    fn snapshot_prefix_filter() {
        let mut reg = Registry::new();
        reg.counter_interned("tenant.", 1, "ops").add(5);
        reg.counter_interned("tenant.", 12, "ops").add(7);
        reg.counter("serve.admitted").add(9);
        reg.gauge_interned("tenant.", 1, "bytes").set(3.0);
        reg.histogram_interned("tenant.", 1, "lat_ns").record(100);
        let t1 = reg.snapshot().with_prefix("tenant.1.");
        assert_eq!(t1.counters.len(), 1, "tenant.12.* must not match tenant.1.");
        assert_eq!(t1.counter("tenant.1.ops"), Some(5));
        assert_eq!(t1.gauge("tenant.1.bytes"), Some(3.0));
        assert_eq!(t1.histograms.len(), 1);
        assert!(reg.snapshot().with_prefix("serve.").counter("serve.admitted") == Some(9));
    }

    #[test]
    fn dump_is_send_and_absorb_is_exact() {
        fn assert_send<T: Send>(_: &T) {}
        let mut worker = Registry::new();
        worker.counter("c").add(2);
        worker.gauge("g").set(3.5);
        worker.histogram("h").record(100);
        worker.histogram("h").record(200);
        let dump = worker.dump();
        assert_send(&dump);

        let mut main = Registry::new();
        main.counter("c").add(1);
        main.histogram("h").record(50);
        main.absorb(&dump);
        assert_eq!(main.counter_value("c"), 3);
        assert_eq!(main.gauge("g").get(), 3.5);
        main.histogram("h").with(|d| {
            assert_eq!(d.count(), 3);
            assert_eq!(d.sum(), 350);
            assert_eq!(d.min(), 50);
            assert_eq!(d.max(), 200);
        });
    }

    #[test]
    fn interned_names_share_state_with_plain_lookup() {
        let mut reg = Registry::new();
        let a = reg.gauge_interned("cluster.node", 3, "backlog_bytes");
        a.set(42.0);
        assert_eq!(reg.gauge("cluster.node3.backlog_bytes").get(), 42.0);
        // Re-resolution returns a handle to the same cell.
        let b = reg.gauge_interned("cluster.node", 3, "backlog_bytes");
        b.set(7.0);
        assert_eq!(a.get(), 7.0);
        let c = reg.counter_interned("cluster.node", 1, "applied");
        c.add(2);
        assert_eq!(reg.counter_value("cluster.node1.applied"), 2);
    }

    #[test]
    fn histogram_delta_since_is_exact_on_count_and_sum() {
        let mut h = HistogramData::new();
        for v in [10u64, 200, 3_000] {
            h.record(v);
        }
        let base = h.clone();
        for v in [5u64, 40_000, 41_000] {
            h.record(v);
        }
        let d = h.delta_since(&base);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 5 + 40_000 + 41_000);
        // min is exact here: the running min (5) lives in the delta's
        // first occupied bucket.
        assert_eq!(d.min(), 5);
        assert_eq!(d.max(), 41_000);
        // Empty delta.
        let e = h.delta_since(&h.clone());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), 0);
        // Merging base + delta reproduces the final totals.
        let mut rebuilt = base.clone();
        rebuilt.merge(&d);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.sum(), h.sum());
        assert_eq!(rebuilt.p99(), h.p99());
    }

    #[test]
    fn registry_merge_adds() {
        let mut a = Registry::new();
        a.counter("c").add(1);
        a.histogram("h").record(5);
        let mut b = Registry::new();
        b.counter("c").add(2);
        b.counter("only_b").add(9);
        b.histogram("h").record(7);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), 3);
        assert_eq!(a.counter_value("only_b"), 9);
        assert_eq!(a.histogram("h").with(HistogramData::count), 2);
    }
}
