//! Histogram unit tests: bucket boundaries, quantile correctness on
//! known distributions, and merge associativity across registries.

use kona_telemetry::{HistogramData, Registry};

#[test]
fn boundary_values_zero_one_max() {
    let mut h = HistogramData::new();
    h.record(0);
    h.record(1);
    h.record(u64::MAX);
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
    // Values below the sub-bucket resolution are exact.
    assert_eq!(h.quantile(0.0), Some(0));
    assert_eq!(h.quantile(0.5), Some(1));
    // The max is reported exactly, not as its bucket's lower bound.
    assert_eq!(h.quantile(1.0), Some(u64::MAX));
}

#[test]
fn empty_histogram() {
    let h = HistogramData::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.p50(), 0);
    assert_eq!(h.p95(), 0);
    assert_eq!(h.p99(), 0);
}

#[test]
fn small_values_are_exact() {
    // One observation of each value 0..16: every value sits in its own
    // unit-width bucket, so quantiles are exact.
    let mut h = HistogramData::new();
    for v in 0..16u64 {
        h.record(v);
    }
    assert_eq!(h.quantile(0.5), Some(7));
    assert_eq!(h.quantile(1.0), Some(15));
    assert_eq!(h.mean(), 7.5);
}

#[test]
fn quantiles_on_uniform_distribution() {
    // 1..=10_000 once each: p50 ≈ 5_000, p95 ≈ 9_500, p99 ≈ 9_900,
    // within the 1/16 (6.25%) relative error of the log-linear buckets.
    let mut h = HistogramData::new();
    for v in 1..=10_000u64 {
        h.record(v);
    }
    let within = |got: u64, want: u64| {
        let err = (got as f64 - want as f64).abs() / want as f64;
        assert!(err <= 1.0 / 16.0, "got {got}, want {want} (err {err:.3})");
    };
    within(h.p50(), 5_000);
    within(h.p95(), 9_500);
    within(h.p99(), 9_900);
    assert_eq!(h.max(), 10_000);
    assert_eq!(h.min(), 1);
    assert_eq!(h.sum(), 10_000 * 10_001 / 2);
}

#[test]
fn quantiles_on_bimodal_distribution() {
    // 90 fast ops at ~3 µs and 10 slow ops at ~1 ms (a typical
    // fetch-latency shape): p50 lands on the fast mode, p95/p99 on the
    // slow one.
    let mut h = HistogramData::new();
    for _ in 0..90 {
        h.record(3_000);
    }
    for _ in 0..10 {
        h.record(1_000_000);
    }
    let p50 = h.p50();
    assert!((2_800..=3_000).contains(&p50), "p50 = {p50}");
    let p95 = h.p95();
    assert!(p95 >= 900_000, "p95 = {p95}");
    assert_eq!(h.quantile(1.0), Some(1_000_000));
}

#[test]
fn merge_is_associative_and_commutative() {
    let mk = |values: &[u64]| {
        let mut h = HistogramData::new();
        for &v in values {
            h.record(v);
        }
        h
    };
    let a = mk(&[0, 1, 17, 300]);
    let b = mk(&[5, 5, 1 << 40]);
    let c = mk(&[u64::MAX, 2]);

    // (a ∪ b) ∪ c
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ab_c = ab.clone();
    ab_c.merge(&c);

    // a ∪ (b ∪ c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);

    // b ∪ a ∪ c (commuted)
    let mut ba = b.clone();
    ba.merge(&a);
    let mut ba_c = ba.clone();
    ba_c.merge(&c);

    for (x, y) in [(&ab_c, &a_bc), (&ab_c, &ba_c)] {
        assert_eq!(x.count(), y.count());
        assert_eq!(x.sum(), y.sum());
        assert_eq!(x.min(), y.min());
        assert_eq!(x.max(), y.max());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(x.quantile(q), y.quantile(q), "quantile {q} diverged");
        }
    }
    assert_eq!(ab_c.count(), 9);
}

#[test]
fn merge_across_registries() {
    // Two independent registries (e.g. two simulated nodes) merge into
    // an aggregate whose histogram equals recording everything in one.
    let mut node_a = Registry::new();
    let mut node_b = Registry::new();
    for v in [10u64, 20, 30] {
        node_a.histogram("lat").record(v);
    }
    for v in [40u64, 50] {
        node_b.histogram("lat").record(v);
    }
    node_a.counter("ops").add(3);
    node_b.counter("ops").add(2);

    let mut combined = Registry::new();
    combined.merge(&node_a);
    combined.merge(&node_b);

    let mut direct = HistogramData::new();
    for v in [10u64, 20, 30, 40, 50] {
        direct.record(v);
    }
    let merged = combined.histogram("lat").data();
    assert_eq!(merged.count(), direct.count());
    assert_eq!(merged.sum(), direct.sum());
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(merged.quantile(q), direct.quantile(q));
    }
    assert_eq!(combined.counter_value("ops"), 5);
}
