//! RDMA work requests, completions and queue pairs.

use crate::bytes::Bytes;
use kona_types::RemoteAddr;
use std::collections::VecDeque;

/// RDMA operation codes used by Kona.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// One-sided read from remote memory.
    Read,
    /// One-sided write to remote memory.
    Write,
    /// Two-sided send (control messages, acknowledgments).
    Send,
}

/// One RDMA work request.
///
/// Requests are *unsignaled* by default; mark the last request of a batch
/// [`WorkRequest::signaled`] to receive a single completion for the whole
/// chain, the optimization the paper applies to both Kona and baselines
/// (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkRequest {
    /// Caller-chosen identifier echoed in the completion.
    pub wr_id: u64,
    /// Operation.
    pub opcode: Opcode,
    /// Remote location (ignored for `Send`, which targets the node's
    /// receive queue).
    pub remote: RemoteAddr,
    /// Payload for `Write`/`Send`; empty for `Read`.
    pub payload: Bytes,
    /// Bytes to read for `Read`; 0 otherwise.
    pub read_len: u64,
    /// Whether this request generates a completion.
    pub is_signaled: bool,
}

impl WorkRequest {
    /// Builds a one-sided WRITE of `payload` to `remote`.
    pub fn write(wr_id: u64, remote: RemoteAddr, payload: impl Into<Bytes>) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::Write,
            remote,
            payload: payload.into(),
            read_len: 0,
            is_signaled: false,
        }
    }

    /// Builds a one-sided READ of `len` bytes from `remote`.
    pub fn read(wr_id: u64, remote: RemoteAddr, len: u64) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::Read,
            remote,
            payload: Bytes::new(),
            read_len: len,
            is_signaled: false,
        }
    }

    /// Builds a SEND of `payload` to the node owning `remote`.
    pub fn send(wr_id: u64, remote: RemoteAddr, payload: impl Into<Bytes>) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::Send,
            remote,
            payload: payload.into(),
            read_len: 0,
            is_signaled: false,
        }
    }

    /// Marks the request signaled (it will produce a [`Completion`]).
    #[must_use]
    pub fn signaled(mut self) -> Self {
        self.is_signaled = true;
        self
    }

    /// Bytes this request moves on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self.opcode {
            Opcode::Read => self.read_len,
            _ => self.payload.len() as u64,
        }
    }
}

/// A work completion (CQE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The `wr_id` of the completed request.
    pub wr_id: u64,
    /// Data returned by a READ; empty otherwise.
    pub data: Bytes,
}

/// A queue pair's completion queue. The fabric pushes completions here;
/// the Poller component drains them.
///
/// # Examples
///
/// ```
/// # use kona_net::{Completion, QueuePair};
/// let mut qp = QueuePair::new(7);
/// qp.push_completion(Completion { wr_id: 1, data: Default::default() });
/// assert_eq!(qp.poll().unwrap().wr_id, 1);
/// assert!(qp.poll().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueuePair {
    qp_num: u32,
    cq: VecDeque<Completion>,
}

impl QueuePair {
    /// Creates a queue pair with the given number.
    pub fn new(qp_num: u32) -> Self {
        QueuePair {
            qp_num,
            cq: VecDeque::new(),
        }
    }

    /// The queue pair number.
    pub fn qp_num(&self) -> u32 {
        self.qp_num
    }

    /// Enqueues a completion (called by the fabric).
    pub fn push_completion(&mut self, completion: Completion) {
        self.cq.push_back(completion);
    }

    /// Polls one completion, if available.
    pub fn poll(&mut self) -> Option<Completion> {
        self.cq.pop_front()
    }

    /// Number of completions waiting.
    pub fn pending(&self) -> usize {
        self.cq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let w = WorkRequest::write(1, RemoteAddr::new(0, 64), vec![1, 2, 3]);
        assert_eq!(w.opcode, Opcode::Write);
        assert_eq!(w.wire_bytes(), 3);
        assert!(!w.is_signaled);
        let r = WorkRequest::read(2, RemoteAddr::new(0, 0), 4096).signaled();
        assert_eq!(r.opcode, Opcode::Read);
        assert_eq!(r.wire_bytes(), 4096);
        assert!(r.is_signaled);
        let s = WorkRequest::send(3, RemoteAddr::new(1, 0), vec![0; 8]);
        assert_eq!(s.opcode, Opcode::Send);
        assert_eq!(s.wire_bytes(), 8);
    }

    #[test]
    fn queue_pair_fifo() {
        let mut qp = QueuePair::new(1);
        assert_eq!(qp.qp_num(), 1);
        for i in 0..3 {
            qp.push_completion(Completion {
                wr_id: i,
                data: Bytes::new(),
            });
        }
        assert_eq!(qp.pending(), 3);
        assert_eq!(qp.poll().unwrap().wr_id, 0);
        assert_eq!(qp.poll().unwrap().wr_id, 1);
        assert_eq!(qp.poll().unwrap().wr_id, 2);
        assert!(qp.poll().is_none());
    }
}
