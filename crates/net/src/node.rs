//! A memory node's byte pool with RDMA registration checking.

use kona_types::{KonaError, RemoteAddr, Result};

/// The memory pool of one disaggregated-memory node.
///
/// One-sided verbs may only touch byte ranges that have been registered
/// (as with real NIC memory regions); [`NodeMemory::check_registered`]
/// enforces this.
///
/// # Examples
///
/// ```
/// # use kona_net::NodeMemory;
/// let mut node = NodeMemory::new(0, 8192);
/// node.register(0, 4096);
/// node.write_bytes(64, &[1, 2, 3]).unwrap();
/// assert_eq!(node.read_bytes(64, 3), &[1, 2, 3]);
/// assert!(node.write_bytes(4096, &[0]).is_err()); // unregistered
/// ```
#[derive(Debug, Clone)]
pub struct NodeMemory {
    id: u32,
    bytes: Vec<u8>,
    /// Registered `(offset, len)` ranges, kept sorted by offset.
    regions: Vec<(u64, u64)>,
}

impl NodeMemory {
    /// Creates a node with `capacity` zeroed bytes and nothing registered.
    pub fn new(id: u32, capacity: u64) -> Self {
        NodeMemory {
            id,
            bytes: vec![0; capacity as usize],
            regions: Vec::new(),
        }
    }

    /// The node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Total pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Registers `[offset, offset + len)` for RDMA access.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    pub fn register(&mut self, offset: u64, len: u64) {
        assert!(
            offset + len <= self.capacity(),
            "registration beyond pool capacity"
        );
        self.regions.push((offset, len));
        self.regions.sort_unstable();
    }

    /// Checks that `[offset, offset+len)` lies inside one registered region.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnregisteredMemory`] otherwise.
    pub fn check_registered(&self, offset: u64, len: u64) -> Result<()> {
        let covered = self
            .regions
            .iter()
            .any(|&(start, rlen)| offset >= start && offset + len <= start + rlen);
        if covered {
            Ok(())
        } else {
            Err(KonaError::UnregisteredMemory {
                addr: RemoteAddr::new(self.id, offset),
                len,
            })
        }
    }

    /// Writes `data` at `offset` (the landing of an RDMA WRITE).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnregisteredMemory`] if the range is not
    /// registered.
    pub fn write_bytes(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_registered(offset, data.len() as u64)?;
        self.bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes at `offset` without a registration check (local
    /// access by the node's own CPU, e.g. the cache-line log receiver).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    pub fn read_bytes(&self, offset: u64, len: u64) -> &[u8] {
        &self.bytes[offset as usize..(offset + len) as usize]
    }

    /// Reads `len` bytes at `offset` as an RDMA READ (registration
    /// checked).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnregisteredMemory`] if the range is not
    /// registered.
    pub fn rdma_read(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.check_registered(offset, len)?;
        Ok(self.read_bytes(offset, len).to_vec())
    }

    /// Local (non-RDMA) write by the node's own CPU, e.g. the cache-line
    /// log receiver distributing lines to their home addresses.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    pub fn local_write(&mut self, offset: u64, data: &[u8]) {
        self.bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut n = NodeMemory::new(3, 1024);
        assert_eq!(n.id(), 3);
        assert_eq!(n.capacity(), 1024);
        n.register(0, 512);
        assert!(n.check_registered(0, 512).is_ok());
        assert!(n.check_registered(500, 20).is_err()); // crosses boundary
        assert!(n.check_registered(512, 1).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut n = NodeMemory::new(0, 1024);
        n.register(128, 256);
        n.write_bytes(130, b"hello").unwrap();
        assert_eq!(n.rdma_read(130, 5).unwrap(), b"hello");
        assert_eq!(n.read_bytes(130, 5), b"hello");
    }

    #[test]
    fn unregistered_write_fails() {
        let mut n = NodeMemory::new(0, 1024);
        let err = n.write_bytes(0, &[1]).unwrap_err();
        assert!(matches!(err, KonaError::UnregisteredMemory { .. }));
    }

    #[test]
    fn local_write_bypasses_registration() {
        let mut n = NodeMemory::new(0, 64);
        n.local_write(10, &[9]);
        assert_eq!(n.read_bytes(10, 1), &[9]);
    }

    #[test]
    #[should_panic]
    fn register_beyond_capacity_panics() {
        NodeMemory::new(0, 64).register(0, 128);
    }

    #[test]
    fn multiple_regions() {
        let mut n = NodeMemory::new(0, 1024);
        n.register(512, 256);
        n.register(0, 128);
        assert!(n.check_registered(64, 64).is_ok());
        assert!(n.check_registered(600, 100).is_ok());
        assert!(n.check_registered(200, 8).is_err());
    }
}
