//! A memory node's byte pool with RDMA registration checking.

use kona_types::{KonaError, RemoteAddr, Result};

/// The memory pool of one disaggregated-memory node.
///
/// One-sided verbs may only touch byte ranges that have been registered
/// (as with real NIC memory regions); [`NodeMemory::check_registered`]
/// enforces this.
///
/// # Examples
///
/// ```
/// # use kona_net::NodeMemory;
/// let mut node = NodeMemory::new(0, 8192);
/// node.register(0, 4096);
/// node.write_bytes(64, &[1, 2, 3]).unwrap();
/// assert_eq!(node.read_bytes(64, 3), &[1, 2, 3]);
/// assert!(node.write_bytes(4096, &[0]).is_err()); // unregistered
/// ```
#[derive(Debug, Clone)]
pub struct NodeMemory {
    id: u32,
    bytes: Vec<u8>,
    /// Registered `(offset, len)` ranges: sorted by offset, disjoint and
    /// non-adjacent (overlapping or touching registrations coalesce), so
    /// membership checks can binary-search.
    regions: Vec<(u64, u64)>,
}

impl NodeMemory {
    /// Creates a node with `capacity` zeroed bytes and nothing registered.
    pub fn new(id: u32, capacity: u64) -> Self {
        NodeMemory {
            id,
            bytes: vec![0; capacity as usize],
            regions: Vec::new(),
        }
    }

    /// The node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Total pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Registers `[offset, offset + len)` for RDMA access. Overlapping or
    /// adjacent registrations coalesce into one region (as a NIC merges
    /// MRs covering the same pages), keeping the region list minimal.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    pub fn register(&mut self, offset: u64, len: u64) {
        assert!(
            offset + len <= self.capacity(),
            "registration beyond pool capacity"
        );
        if len == 0 {
            return;
        }
        self.regions.push((offset, len));
        self.regions.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.regions.len());
        for &(start, rlen) in &self.regions {
            match merged.last_mut() {
                Some((mstart, mlen)) if start <= *mstart + *mlen => {
                    *mlen = (*mlen).max(start + rlen - *mstart);
                }
                _ => merged.push((start, rlen)),
            }
        }
        self.regions = merged;
    }

    /// Deregisters `[offset, offset + len)`: any registered coverage
    /// intersecting the range is removed, splitting regions that straddle
    /// its edges. Deregistering unregistered bytes is a no-op.
    pub fn deregister(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = offset + len;
        let mut next: Vec<(u64, u64)> = Vec::with_capacity(self.regions.len() + 1);
        for &(start, rlen) in &self.regions {
            let rend = start + rlen;
            if rend <= offset || start >= end {
                next.push((start, rlen));
                continue;
            }
            if start < offset {
                next.push((start, offset - start));
            }
            if rend > end {
                next.push((end, rend - end));
            }
        }
        self.regions = next;
    }

    /// Registered regions currently in effect (sorted, disjoint).
    pub fn regions(&self) -> &[(u64, u64)] {
        &self.regions
    }

    /// Checks that `[offset, offset+len)` lies inside one registered region.
    ///
    /// Regions are sorted and disjoint, so the candidate region — the last
    /// one starting at or before `offset` — is found by binary search.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnregisteredMemory`] otherwise.
    pub fn check_registered(&self, offset: u64, len: u64) -> Result<()> {
        let idx = self.regions.partition_point(|&(start, _)| start <= offset);
        let covered = idx > 0 && {
            let (start, rlen) = self.regions[idx - 1];
            offset + len <= start + rlen
        };
        if covered {
            Ok(())
        } else {
            Err(KonaError::UnregisteredMemory {
                addr: RemoteAddr::new(self.id, offset),
                len,
            })
        }
    }

    /// Writes `data` at `offset` (the landing of an RDMA WRITE).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnregisteredMemory`] if the range is not
    /// registered.
    pub fn write_bytes(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_registered(offset, data.len() as u64)?;
        self.bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes at `offset` without a registration check (local
    /// access by the node's own CPU, e.g. the cache-line log receiver).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    pub fn read_bytes(&self, offset: u64, len: u64) -> &[u8] {
        &self.bytes[offset as usize..(offset + len) as usize]
    }

    /// Reads `len` bytes at `offset` as an RDMA READ (registration
    /// checked).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnregisteredMemory`] if the range is not
    /// registered.
    pub fn rdma_read(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.check_registered(offset, len)?;
        Ok(self.read_bytes(offset, len).to_vec())
    }

    /// Local (non-RDMA) write by the node's own CPU, e.g. the cache-line
    /// log receiver distributing lines to their home addresses.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    pub fn local_write(&mut self, offset: u64, data: &[u8]) {
        self.bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
    }

    /// Zeroes the whole pool, keeping registrations. A fenced node
    /// rejoining the cluster re-syncs from scratch: its pre-partition
    /// contents must not be mistaken for live data.
    pub fn wipe(&mut self) {
        self.bytes.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut n = NodeMemory::new(3, 1024);
        assert_eq!(n.id(), 3);
        assert_eq!(n.capacity(), 1024);
        n.register(0, 512);
        assert!(n.check_registered(0, 512).is_ok());
        assert!(n.check_registered(500, 20).is_err()); // crosses boundary
        assert!(n.check_registered(512, 1).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut n = NodeMemory::new(0, 1024);
        n.register(128, 256);
        n.write_bytes(130, b"hello").unwrap();
        assert_eq!(n.rdma_read(130, 5).unwrap(), b"hello");
        assert_eq!(n.read_bytes(130, 5), b"hello");
    }

    #[test]
    fn unregistered_write_fails() {
        let mut n = NodeMemory::new(0, 1024);
        let err = n.write_bytes(0, &[1]).unwrap_err();
        assert!(matches!(err, KonaError::UnregisteredMemory { .. }));
    }

    #[test]
    fn local_write_bypasses_registration() {
        let mut n = NodeMemory::new(0, 64);
        n.local_write(10, &[9]);
        assert_eq!(n.read_bytes(10, 1), &[9]);
    }

    #[test]
    #[should_panic]
    fn register_beyond_capacity_panics() {
        NodeMemory::new(0, 64).register(0, 128);
    }

    #[test]
    fn multiple_regions() {
        let mut n = NodeMemory::new(0, 1024);
        n.register(512, 256);
        n.register(0, 128);
        assert!(n.check_registered(64, 64).is_ok());
        assert!(n.check_registered(600, 100).is_ok());
        assert!(n.check_registered(200, 8).is_err());
    }

    #[test]
    fn overlapping_registrations_coalesce() {
        let mut n = NodeMemory::new(0, 1024);
        n.register(0, 128);
        n.register(64, 128); // overlaps the first
        n.register(192, 64); // adjacent to the merged region
        assert_eq!(n.regions(), &[(0, 256)]);
        // A transfer spanning the old region boundaries now passes.
        assert!(n.check_registered(100, 150).is_ok());
        assert!(n.check_registered(0, 257).is_err());
        // Containment and duplicates add nothing.
        n.register(32, 8);
        n.register(0, 256);
        assert_eq!(n.regions(), &[(0, 256)]);
        n.register(0, 0); // zero-length no-op
        assert_eq!(n.regions(), &[(0, 256)]);
    }

    #[test]
    fn deregister_removes_and_splits() {
        let mut n = NodeMemory::new(0, 1024);
        n.register(0, 512);
        // Punch a hole in the middle: the region splits in two.
        n.deregister(128, 64);
        assert_eq!(n.regions(), &[(0, 128), (192, 320)]);
        assert!(n.check_registered(0, 128).is_ok());
        assert!(n.check_registered(128, 64).is_err());
        assert!(n.check_registered(192, 320).is_ok());
        assert!(n.check_registered(100, 100).is_err()); // straddles the hole
        // Trim an edge.
        n.deregister(0, 64);
        assert_eq!(n.regions(), &[(64, 64), (192, 320)]);
        // Remove across several regions at once.
        n.deregister(0, 1024);
        assert!(n.regions().is_empty());
        assert!(n.check_registered(64, 1).is_err());
        // Deregistering nothing is a no-op.
        n.deregister(0, 0);
        n.deregister(900, 100);
        assert!(n.regions().is_empty());
    }

    #[test]
    fn check_registered_binary_search_agrees_with_scan() {
        use kona_types::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xC0A1);
        for _ in 0..32 {
            let mut n = NodeMemory::new(0, 4096);
            let mut naive: Vec<(u64, u64)> = Vec::new();
            for _ in 0..rng.gen_range(1usize..8) {
                let start = rng.gen_range(0u64..4000);
                let len = rng.gen_range(1u64..=(4096 - start).min(400));
                n.register(start, len);
                naive.push((start, len));
            }
            for _ in 0..64 {
                let off = rng.gen_range(0u64..4096);
                let len = rng.gen_range(1u64..=(4096 - off).min(256));
                let scan = naive
                    .iter()
                    .any(|&(s, l)| off >= s && off + len <= s + l);
                // The coalesced form may cover *more* than any single naive
                // region (adjacent merges), never less.
                let fast = n.check_registered(off, len).is_ok();
                if scan {
                    assert!(fast, "covered range rejected at {off}+{len}");
                }
                if !fast {
                    assert!(!scan);
                }
            }
        }
    }
}
