//! A cheap-to-clone immutable byte buffer.
//!
//! The workspace builds with no external dependencies; this is the small
//! slice of the `bytes` crate's API the simulator needs — an `Arc<[u8]>`
//! behind the same `Bytes` name, so payloads can be shared between work
//! requests, completions and node memory without copying.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// # Examples
///
/// ```
/// # use kona_net::Bytes;
/// let b = Bytes::from(vec![1u8, 2, 3]);
/// let c = b.clone(); // shares the allocation
/// assert_eq!(&c[..], &[1, 2, 3]);
/// assert_eq!(b.to_vec(), vec![1, 2, 3]);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes(s.into())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes(a.as_slice().into())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::from(vec![7u8; 32]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.len(), 32);
        assert!(!c.is_empty());
        assert_eq!(&c[..4], &[7, 7, 7, 7]);
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_slice_and_array() {
        let s: &[u8] = &[1, 2, 3];
        assert_eq!(Bytes::from(s).to_vec(), vec![1, 2, 3]);
        assert_eq!(Bytes::from([4u8, 5]).to_vec(), vec![4, 5]);
    }
}
