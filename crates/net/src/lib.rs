//! An RDMA network simulator.
//!
//! The paper's testbed is Mellanox ConnectX-5 NICs on a 100 Gbps RoCE
//! switch, where a 4 KiB one-sided read or write takes ~3 µs (§2.1). That
//! hardware is the reproduction gate, so this crate models it:
//!
//! * [`NodeMemory`] — a memory node's byte pool with registered-region
//!   checking (verbs touching unregistered memory fail, as on real NICs).
//! * [`WorkRequest`] / [`Completion`] / [`QueuePair`] — one-sided READ and
//!   WRITE verbs plus two-sided SEND, with *linking/batching* (a posted
//!   chain pays the base latency once) and *unsignaled completions* (only
//!   signaled requests generate CQEs) — the two optimizations §5.1 found
//!   essential.
//! * [`NetworkModel`] — latency = base + bytes/bandwidth, calibrated to the
//!   paper's 3 µs per 4 KiB verb; [`CopyModel`] charges the local copies
//!   into RDMA-registered buffers (with the AVX speedup §5.1 describes).
//! * [`FaultPlan`] / [`FaultInjector`] — seeded, deterministic fault
//!   injection (per-verb drop/corrupt/timeout, latency spikes, node flaps
//!   and crashes scheduled in simulated time) exercising the §4.5 failure
//!   paths; see the [`fault`] module docs.
//!
//! # Examples
//!
//! ```
//! use kona_net::{Fabric, NetworkModel, WorkRequest};
//! use kona_types::RemoteAddr;
//!
//! let mut fabric = Fabric::new(NetworkModel::connectx5());
//! fabric.add_node(0, 1 << 20);
//! fabric.register(0, 0, 4096).unwrap();
//! let wr = WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0xAB; 64]).signaled();
//! let (time, completions) = fabric.post(vec![wr]).unwrap();
//! assert_eq!(completions.len(), 1);
//! assert!(time.as_ns() > 0);
//! assert_eq!(fabric.node(0).unwrap().read_bytes(0, 1)[0], 0xAB);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod fabric;
pub mod fault;
mod latency;
mod node;
mod verbs;

pub use bytes::Bytes;
pub use fabric::{Fabric, NetStats};
pub use fault::{
    CutDirection, FaultInjector, FaultPlan, FaultStats, LatencySpike, LinkCut, NodeFault,
    NodeFaultKind, VerbFaultProbs, INITIATOR,
};
pub use latency::{CopyModel, NetworkModel};
pub use node::NodeMemory;
pub use verbs::{Completion, Opcode, QueuePair, WorkRequest};
