//! Deterministic fault injection for the fabric (§4.5).
//!
//! The paper warns that "the cache coherence protocol can result in a
//! timeout due to slow or failed network operations" and prescribes MCE
//! handling, page-fault fallback and replication during eviction. To
//! exercise those recovery paths this module injects faults *into the
//! simulated fabric itself*, driven entirely by a [`FaultPlan`] and a
//! seeded in-repo PRNG, so every chaos run is reproducible bit for bit:
//!
//! * per-verb **drop / corrupt / timeout** probabilities (corrupt packets
//!   are rejected by the transport's invariant CRC, as on RoCE — corrupt
//!   data never lands, the verb just fails);
//! * **latency spikes** — windows of simulated time during which every
//!   chain is charged extra latency (congestion);
//! * **node flaps** — a node goes down at a scheduled simulated-time
//!   point and recovers later;
//! * **permanent crashes** — a node goes down and never returns.
//!
//! Scheduled events fire against the fabric's simulated clock, which
//! advances with every posted chain (and explicitly via
//! [`Fabric::advance_time`](crate::Fabric::advance_time) when the runtime
//! sleeps through a retry backoff), so two runs with the same plan and the
//! same workload observe exactly the same faults.

use crate::verbs::Opcode;
use kona_types::rng::{Rng, StdRng};
use kona_types::{FxHashMap, Nanos, VerbFaultKind};

/// Per-verb fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VerbFaultProbs {
    /// Probability the verb's packet is dropped on the wire.
    pub drop: f64,
    /// Probability the payload is corrupted in flight (rejected by the
    /// remote NIC's invariant CRC — surfaces as a failed verb).
    pub corrupt: f64,
    /// Probability the verb hangs until its deadline expires.
    pub timeout: f64,
}

impl VerbFaultProbs {
    /// No injected faults.
    pub const NONE: VerbFaultProbs = VerbFaultProbs {
        drop: 0.0,
        corrupt: 0.0,
        timeout: 0.0,
    };

    /// Whether any probability is non-zero.
    pub fn any(&self) -> bool {
        self.drop > 0.0 || self.corrupt > 0.0 || self.timeout > 0.0
    }

    fn total(&self) -> f64 {
        self.drop + self.corrupt + self.timeout
    }
}

/// What happens to a node at a scheduled point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node goes down and recovers after `down_for`.
    Flap {
        /// How long the node stays unreachable.
        down_for: Nanos,
    },
    /// The node goes down and never comes back.
    Crash,
}

/// One scheduled node fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// The target node.
    pub node: u32,
    /// Simulated time at which the node goes down.
    pub at: Nanos,
    /// Flap or permanent crash.
    pub kind: NodeFaultKind,
}

/// Logical id of the verb initiator (the compute node) in partition
/// group specs. The fabric is initiator-centric — every verb originates
/// at the compute node — so a partition group containing [`INITIATOR`]
/// is the mainland and groups without it are cut-off islands.
pub const INITIATOR: u32 = u32::MAX;

/// Which direction of a link the cut severs. The fabric models the
/// initiator ↔ memory-node link; a symmetric cut kills both directions,
/// the asymmetric variants model one-way loss (requests vanish, or
/// requests land but acknowledgments never return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutDirection {
    /// Both directions severed: requests never reach the node.
    Symmetric,
    /// Initiator → node severed: requests vanish, nothing lands.
    RequestLost,
    /// Node → initiator severed: requests land (side effects happen) but
    /// the acknowledgment is lost, so the verb still times out. Verbs are
    /// idempotent, so the retry that follows is safe.
    AckLost,
}

/// One scheduled link cut between the initiator and a memory node,
/// active during `[at, heal_at)`. Verbs crossing an active cut
/// deterministically time out (charged the plan's `timeout_penalty`);
/// the link heals on schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCut {
    /// The memory node on the far side of the cut.
    pub node: u32,
    /// Simulated time the cut opens.
    pub at: Nanos,
    /// Simulated time the cut heals (exclusive).
    pub heal_at: Nanos,
    /// Which direction(s) the cut severs.
    pub direction: CutDirection,
}

impl LinkCut {
    /// Whether the cut is active at `now`.
    pub fn active_at(&self, now: Nanos) -> bool {
        self.at <= now && now < self.heal_at
    }
}

/// A window of simulated time during which chains pay extra latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySpike {
    /// Window start.
    pub at: Nanos,
    /// Window end (exclusive).
    pub until: Nanos,
    /// Extra latency charged to every chain posted inside the window.
    pub extra: Nanos,
}

/// A complete, seed-deterministic description of the faults to inject.
///
/// Build one with the combinators below or pick a bundled scenario from
/// [`FaultPlan::bundled`]. The same plan + seed + workload always yields
/// the same faults.
///
/// # Examples
///
/// ```
/// use kona_net::{FaultPlan, NodeFaultKind};
/// use kona_types::Nanos;
///
/// let plan = FaultPlan::calm(42)
///     .with_drop_prob(0.02)
///     .with_flap(1, Nanos::micros(500), Nanos::micros(200));
/// assert_eq!(plan.node_faults.len(), 1);
/// assert!(matches!(plan.node_faults[0].kind, NodeFaultKind::Flap { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scenario name (used in reports and metric dumps).
    pub name: &'static str,
    /// Seed for the injector's PRNG.
    pub seed: u64,
    /// Fault probabilities for one-sided reads.
    pub read: VerbFaultProbs,
    /// Fault probabilities for one-sided writes.
    pub write: VerbFaultProbs,
    /// Fault probabilities for two-sided sends.
    pub send: VerbFaultProbs,
    /// Simulated time a timed-out verb hangs before its deadline fires.
    pub timeout_penalty: Nanos,
    /// Congestion windows.
    pub spikes: Vec<LatencySpike>,
    /// Scheduled node flaps and crashes.
    pub node_faults: Vec<NodeFault>,
    /// Scheduled network partitions / link cuts.
    pub cuts: Vec<LinkCut>,
}

impl FaultPlan {
    /// A plan that injects nothing — the control scenario.
    pub fn calm(seed: u64) -> Self {
        FaultPlan {
            name: "calm",
            seed,
            read: VerbFaultProbs::NONE,
            write: VerbFaultProbs::NONE,
            send: VerbFaultProbs::NONE,
            timeout_penalty: Nanos::micros(30),
            spikes: Vec::new(),
            node_faults: Vec::new(),
            cuts: Vec::new(),
        }
    }

    /// Renames the plan.
    #[must_use]
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Derives the per-shard variant of this plan: same probabilities,
    /// spikes and node faults, but the injector PRNG is reseeded with
    /// [`kona_types::derive_shard_seed`] so shard fault streams are
    /// decorrelated yet fully determined by `(plan, shard)` — independent
    /// of how many worker threads execute the shards.
    #[must_use]
    pub fn for_shard(mut self, shard: u32) -> Self {
        self.seed = kona_types::derive_shard_seed(self.seed, shard);
        self
    }

    /// Sets the drop probability on every verb.
    #[must_use]
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.read.drop = p;
        self.write.drop = p;
        self.send.drop = p;
        self
    }

    /// Sets the corruption probability on every verb.
    #[must_use]
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        self.read.corrupt = p;
        self.write.corrupt = p;
        self.send.corrupt = p;
        self
    }

    /// Sets the timeout probability on every verb.
    #[must_use]
    pub fn with_timeout_prob(mut self, p: f64) -> Self {
        self.read.timeout = p;
        self.write.timeout = p;
        self.send.timeout = p;
        self
    }

    /// Adds a congestion window of `duration` starting at `at`.
    #[must_use]
    pub fn with_spike(mut self, at: Nanos, duration: Nanos, extra: Nanos) -> Self {
        self.spikes.push(LatencySpike {
            at,
            until: at + duration,
            extra,
        });
        self
    }

    /// Schedules `node` to go down at `at` and recover after `down_for`.
    #[must_use]
    pub fn with_flap(mut self, node: u32, at: Nanos, down_for: Nanos) -> Self {
        self.node_faults.push(NodeFault {
            node,
            at,
            kind: NodeFaultKind::Flap { down_for },
        });
        self
    }

    /// Schedules `node` to crash permanently at `at`.
    #[must_use]
    pub fn with_crash(mut self, node: u32, at: Nanos) -> Self {
        self.node_faults.push(NodeFault {
            node,
            at,
            kind: NodeFaultKind::Crash,
        });
        self
    }

    /// Schedules a symmetric network partition active during
    /// `[at, heal_at)`: `groups` are isolated islands, and every node in
    /// a group that does not contain [`INITIATOR`] is cut off from the
    /// initiator both ways. Unlisted nodes stay on the initiator's side.
    /// Verbs crossing a cut deterministically time out; the partition
    /// heals on schedule.
    #[must_use]
    pub fn with_partition(mut self, groups: &[&[u32]], at: Nanos, heal_at: Nanos) -> Self {
        for group in groups {
            if group.contains(&INITIATOR) {
                continue;
            }
            for &node in *group {
                self.cuts.push(LinkCut {
                    node,
                    at,
                    heal_at,
                    direction: CutDirection::Symmetric,
                });
            }
        }
        self
    }

    /// Schedules an asymmetric (or explicit single-link) cut between the
    /// initiator and `node`, active during `[at, heal_at)`.
    #[must_use]
    pub fn with_link_cut(
        mut self,
        node: u32,
        at: Nanos,
        heal_at: Nanos,
        direction: CutDirection,
    ) -> Self {
        self.cuts.push(LinkCut {
            node,
            at,
            heal_at,
            direction,
        });
        self
    }

    /// The bundled chaos scenarios the integration test and `fig_failure`
    /// run, from benign to hostile. `victim` is the node targeted by flap
    /// and crash scenarios (crash scenarios need a replicated runtime to
    /// survive).
    pub fn bundled(seed: u64, victim: u32) -> Vec<FaultPlan> {
        vec![
            FaultPlan::calm(seed),
            FaultPlan::calm(seed)
                .named("lossy")
                .with_drop_prob(0.02)
                .with_corrupt_prob(0.01),
            FaultPlan::calm(seed)
                .named("timeouts")
                .with_timeout_prob(0.02),
            FaultPlan::calm(seed)
                .named("congested")
                .with_spike(Nanos::micros(200), Nanos::millis(2), Nanos::micros(20))
                .with_spike(Nanos::millis(6), Nanos::millis(1), Nanos::micros(50)),
            FaultPlan::calm(seed)
                .named("flappy")
                .with_flap(victim, Nanos::micros(800), Nanos::micros(120))
                .with_flap(victim, Nanos::millis(4), Nanos::micros(120)),
            FaultPlan::calm(seed)
                .named("crash")
                .with_crash(victim, Nanos::millis(2)),
            // A one-way ack-loss prelude, then a full symmetric cut that
            // heals: the victim is alive the whole time, just unreachable.
            FaultPlan::calm(seed)
                .named("partitioned")
                .with_link_cut(
                    victim,
                    Nanos::micros(500),
                    Nanos::micros(700),
                    CutDirection::AckLost,
                )
                .with_partition(&[&[victim]], Nanos::micros(700), Nanos::micros(2500)),
            // The partition heals, then the same node later dies for real
            // — the cut was a warning, not a false alarm. The ack-loss
            // prelude means in-flight writebacks are already failing when
            // the cut lands, so the outage is witnessed op by op rather
            // than slept through in one fallback wait.
            FaultPlan::calm(seed)
                .named("partition_then_crash")
                .with_link_cut(
                    victim,
                    Nanos::micros(250),
                    Nanos::micros(600),
                    CutDirection::AckLost,
                )
                .with_partition(&[&[victim]], Nanos::micros(600), Nanos::millis(2))
                .with_crash(victim, Nanos::millis(5)),
            FaultPlan::calm(seed)
                .named("chaos")
                .with_drop_prob(0.015)
                .with_corrupt_prob(0.005)
                .with_timeout_prob(0.005)
                .with_spike(Nanos::millis(1), Nanos::millis(2), Nanos::micros(15))
                .with_flap(victim, Nanos::micros(700), Nanos::micros(120))
                .with_crash(victim, Nanos::millis(8)),
        ]
    }

    /// Checks probabilities are in range.
    ///
    /// # Errors
    ///
    /// Returns [`kona_types::KonaError::InvalidConfig`] on a probability
    /// outside `[0, 1]` or a per-verb total above 1.
    pub fn validate(&self) -> kona_types::Result<()> {
        for (verb, p) in [("read", self.read), ("write", self.write), ("send", self.send)] {
            for (what, v) in [("drop", p.drop), ("corrupt", p.corrupt), ("timeout", p.timeout)] {
                if !(0.0..=1.0).contains(&v) {
                    return Err(kona_types::KonaError::InvalidConfig(format!(
                        "{verb} {what} probability {v} outside [0, 1]"
                    )));
                }
            }
            if p.total() > 1.0 {
                return Err(kona_types::KonaError::InvalidConfig(format!(
                    "{verb} fault probabilities sum to {} > 1",
                    p.total()
                )));
            }
        }
        for cut in &self.cuts {
            if cut.heal_at <= cut.at {
                return Err(kona_types::KonaError::InvalidConfig(format!(
                    "link cut on node {} heals at {} before it opens at {}",
                    cut.node,
                    cut.heal_at.as_ns(),
                    cut.at.as_ns()
                )));
            }
            if cut.node == INITIATOR {
                return Err(kona_types::KonaError::InvalidConfig(
                    "link cut targets the initiator itself".into(),
                ));
            }
        }
        Ok(())
    }

    fn probs(&self, opcode: Opcode) -> VerbFaultProbs {
        match opcode {
            Opcode::Read => self.read,
            Opcode::Write => self.write,
            Opcode::Send => self.send,
        }
    }
}

/// Counters of the faults actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Verbs dropped on the wire.
    pub dropped: u64,
    /// Verbs rejected by the remote NIC's CRC.
    pub corrupted: u64,
    /// Verbs that hung past their deadline.
    pub timed_out: u64,
    /// Posts rejected because the target node was down.
    pub node_down_rejections: u64,
    /// Chains that paid spike latency.
    pub spiked_chains: u64,
    /// Verbs that timed out crossing an active partition cut.
    pub partitioned_verbs: u64,
}

impl FaultStats {
    /// Total verb-level faults injected.
    pub fn total_verb_faults(&self) -> u64 {
        self.dropped + self.corrupted + self.timed_out
    }

    /// Accumulates another injector's counters (shard-merge aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.timed_out += other.timed_out;
        self.node_down_rejections += other.node_down_rejections;
        self.spiked_chains += other.spiked_chains;
        self.partitioned_verbs += other.partitioned_verbs;
    }
}

/// The stateful injector the fabric consults on every post.
///
/// Owns the plan, the seeded PRNG and the current down-state of every
/// scheduled node. Created from a [`FaultPlan`]; install it with
/// [`Fabric::set_fault_injector`](crate::Fabric::set_fault_injector).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    /// Next unfired index into `plan.node_faults` (kept sorted by time).
    next_event: usize,
    /// Currently-down nodes → recovery time (`None` = crashed for good).
    down: FxHashMap<u32, Option<Nanos>>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector; node faults are sorted by schedule time so
    /// they fire in order regardless of how the plan listed them.
    pub fn new(mut plan: FaultPlan) -> Self {
        plan.node_faults.sort_by_key(|f| f.at);
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            next_event: 0,
            down: FxHashMap::default(),
            stats: FaultStats::default(),
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of injected faults.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Fires every scheduled node fault with `at <= now` and clears flaps
    /// whose recovery time has passed.
    pub fn advance_to(&mut self, now: Nanos) {
        while let Some(f) = self.plan.node_faults.get(self.next_event) {
            if f.at > now {
                break;
            }
            let until = match f.kind {
                NodeFaultKind::Flap { down_for } => Some(f.at + down_for),
                NodeFaultKind::Crash => None,
            };
            // A crash overrides a pending flap recovery, never vice versa.
            match self.down.get(&f.node) {
                Some(None) => {}
                _ => {
                    self.down.insert(f.node, until);
                }
            }
            self.next_event += 1;
        }
        self.down
            .retain(|_, until| until.is_none_or(|t| t > now));
    }

    /// Whether `node` is down at time `now` (current down-state plus any
    /// scheduled fault that has started by `now`, whether or not
    /// [`FaultInjector::advance_to`] has fired it yet).
    pub fn node_down_at(&self, node: u32, now: Nanos) -> bool {
        if let Some(until) = self.down.get(&node) {
            if until.is_none_or(|t| t > now) {
                return true;
            }
        }
        self.plan.node_faults[self.next_event..]
            .iter()
            .take_while(|f| f.at <= now)
            .any(|f| {
                f.node == node
                    && match f.kind {
                        NodeFaultKind::Flap { down_for } => f.at + down_for > now,
                        NodeFaultKind::Crash => true,
                    }
            })
    }

    /// When `node` will be reachable again: `Some(t)` for a flapping
    /// node, `None` for a healthy or permanently-crashed one (check
    /// [`FaultInjector::node_down_at`] to distinguish the two).
    pub fn node_back_at(&self, node: u32) -> Option<Nanos> {
        self.down.get(&node).copied().flatten()
    }

    /// Draws the fault decision for one verb. One PRNG draw per verb
    /// keeps the random stream independent of which fault fires.
    pub fn decide(&mut self, opcode: Opcode) -> Option<VerbFaultKind> {
        let p = self.plan.probs(opcode);
        if !p.any() {
            return None;
        }
        let x: f64 = self.rng.gen();
        if x < p.drop {
            self.stats.dropped += 1;
            Some(VerbFaultKind::Dropped)
        } else if x < p.drop + p.corrupt {
            self.stats.corrupted += 1;
            Some(VerbFaultKind::Corrupted)
        } else if x < p.total() {
            self.stats.timed_out += 1;
            Some(VerbFaultKind::TimedOut)
        } else {
            None
        }
    }

    /// Simulated hang charged when a verb times out.
    pub fn timeout_penalty(&self) -> Nanos {
        self.plan.timeout_penalty
    }

    /// Extra latency from congestion windows active at `now`.
    pub fn extra_latency(&mut self, now: Nanos) -> Nanos {
        let extra = self
            .plan
            .spikes
            .iter()
            .filter(|s| s.at <= now && now < s.until)
            .map(|s| s.extra)
            .fold(Nanos::ZERO, |a, b| a + b);
        if extra > Nanos::ZERO {
            self.stats.spiked_chains += 1;
        }
        extra
    }

    /// Whether a cut severing the initiator → `node` direction is active
    /// at `now` (symmetric or request-lost): a verb posted now would
    /// never reach the node.
    pub fn request_cut_at(&self, node: u32, now: Nanos) -> bool {
        self.plan.cuts.iter().any(|c| {
            c.node == node
                && c.active_at(now)
                && matches!(
                    c.direction,
                    CutDirection::Symmetric | CutDirection::RequestLost
                )
        })
    }

    /// Whether a cut severing only the `node` → initiator direction is
    /// active at `now`: the verb lands, but its acknowledgment is lost.
    pub fn ack_cut_at(&self, node: u32, now: Nanos) -> bool {
        !self.request_cut_at(node, now)
            && self
                .plan
                .cuts
                .iter()
                .any(|c| {
                    c.node == node
                        && c.active_at(now)
                        && c.direction == CutDirection::AckLost
                })
    }

    /// Whether any cut to `node` is active at `now`, in either direction.
    pub fn cut_at(&self, node: u32, now: Nanos) -> bool {
        self.plan.cuts.iter().any(|c| c.node == node && c.active_at(now))
    }

    /// When every cut to `node` active at `now` will have healed:
    /// `Some(t)` with the latest heal time if any cut is active, `None`
    /// if the link is whole. Scheduled partitions always heal, so —
    /// unlike a crash — this outage is worth waiting out.
    pub fn partition_heals_at(&self, node: u32, now: Nanos) -> Option<Nanos> {
        self.plan
            .cuts
            .iter()
            .filter(|c| c.node == node && c.active_at(now))
            .map(|c| c.heal_at)
            .max()
    }

    /// Records a verb that timed out crossing an active cut.
    pub(crate) fn note_partitioned_verb(&mut self) {
        self.stats.partitioned_verbs += 1;
    }

    /// Records a post rejected because its target node was down.
    pub(crate) fn note_down_rejection(&mut self) {
        self.stats.node_down_rejections += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::calm(1));
        for _ in 0..1000 {
            assert_eq!(inj.decide(Opcode::Read), None);
        }
        inj.advance_to(Nanos::secs(1));
        assert!(!inj.node_down_at(0, Nanos::secs(1)));
        assert_eq!(inj.extra_latency(Nanos::millis(1)), Nanos::ZERO);
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let plan = FaultPlan::calm(7)
            .with_drop_prob(0.1)
            .with_corrupt_prob(0.05)
            .with_timeout_prob(0.05);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let da: Vec<_> = (0..500).map(|_| a.decide(Opcode::Write)).collect();
        let db: Vec<_> = (0..500).map(|_| b.decide(Opcode::Write)).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(Option::is_some));
        assert!(da.iter().any(Option::is_none));
        assert_eq!(
            a.stats().total_verb_faults(),
            da.iter().filter(|d| d.is_some()).count() as u64
        );
    }

    #[test]
    fn probabilities_partition_correctly() {
        // drop=1.0 → every verb dropped; corrupt=1.0 → every verb corrupted.
        let mut all_drop = FaultInjector::new(FaultPlan::calm(1).with_drop_prob(1.0));
        assert_eq!(all_drop.decide(Opcode::Read), Some(VerbFaultKind::Dropped));
        let mut all_corrupt = FaultInjector::new(FaultPlan::calm(1).with_corrupt_prob(1.0));
        assert_eq!(
            all_corrupt.decide(Opcode::Send),
            Some(VerbFaultKind::Corrupted)
        );
        let mut all_timeout = FaultInjector::new(FaultPlan::calm(1).with_timeout_prob(1.0));
        assert_eq!(
            all_timeout.decide(Opcode::Write),
            Some(VerbFaultKind::TimedOut)
        );
    }

    #[test]
    fn flap_goes_down_and_recovers() {
        let plan = FaultPlan::calm(1).with_flap(2, Nanos::micros(10), Nanos::micros(5));
        let mut inj = FaultInjector::new(plan);
        inj.advance_to(Nanos::micros(9));
        assert!(!inj.node_down_at(2, Nanos::micros(9)));
        inj.advance_to(Nanos::micros(10));
        assert!(inj.node_down_at(2, Nanos::micros(10)));
        assert_eq!(inj.node_back_at(2), Some(Nanos::micros(15)));
        inj.advance_to(Nanos::micros(15));
        assert!(!inj.node_down_at(2, Nanos::micros(15)));
    }

    #[test]
    fn crash_is_permanent() {
        let plan = FaultPlan::calm(1).with_crash(0, Nanos::micros(1));
        let mut inj = FaultInjector::new(plan);
        inj.advance_to(Nanos::secs(10));
        assert!(inj.node_down_at(0, Nanos::secs(10)));
        assert_eq!(inj.node_back_at(0), None);
    }

    #[test]
    fn node_down_at_sees_unfired_schedule() {
        // Query a future instant without advancing the injector.
        let plan = FaultPlan::calm(1).with_flap(3, Nanos::micros(10), Nanos::micros(5));
        let inj = FaultInjector::new(plan);
        assert!(inj.node_down_at(3, Nanos::micros(12)));
        assert!(!inj.node_down_at(3, Nanos::micros(16)));
        assert!(!inj.node_down_at(3, Nanos::micros(9)));
    }

    #[test]
    fn spikes_add_latency_inside_window_only() {
        let plan = FaultPlan::calm(1).with_spike(
            Nanos::micros(10),
            Nanos::micros(10),
            Nanos::micros(3),
        );
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.extra_latency(Nanos::micros(5)), Nanos::ZERO);
        assert_eq!(inj.extra_latency(Nanos::micros(12)), Nanos::micros(3));
        assert_eq!(inj.extra_latency(Nanos::micros(20)), Nanos::ZERO);
        assert_eq!(inj.stats().spiked_chains, 1);
    }

    #[test]
    fn bundled_plans_validate() {
        let plans = FaultPlan::bundled(42, 1);
        assert!(plans.len() >= 6);
        for p in &plans {
            p.validate().expect("bundled plan must validate");
        }
        let names: Vec<_> = plans.iter().map(|p| p.name).collect();
        assert!(names.contains(&"calm"));
        assert!(names.contains(&"chaos"));
        assert!(names.contains(&"partitioned"));
        assert!(names.contains(&"partition_then_crash"));
    }

    #[test]
    fn partition_cuts_open_and_heal_on_schedule() {
        let plan = FaultPlan::calm(1).with_partition(
            &[&[2, 3]],
            Nanos::micros(10),
            Nanos::micros(20),
        );
        let inj = FaultInjector::new(plan);
        for node in [2, 3] {
            assert!(!inj.request_cut_at(node, Nanos::micros(9)));
            assert!(inj.request_cut_at(node, Nanos::micros(10)));
            assert!(inj.request_cut_at(node, Nanos::micros(19)));
            assert!(!inj.request_cut_at(node, Nanos::micros(20)));
            assert_eq!(
                inj.partition_heals_at(node, Nanos::micros(15)),
                Some(Nanos::micros(20))
            );
            assert_eq!(inj.partition_heals_at(node, Nanos::micros(25)), None);
        }
        // Unlisted nodes ride with the initiator mainland.
        assert!(!inj.cut_at(0, Nanos::micros(15)));
    }

    #[test]
    fn initiator_group_is_the_mainland() {
        let plan = FaultPlan::calm(1).with_partition(
            &[&[INITIATOR, 1], &[2]],
            Nanos::micros(5),
            Nanos::micros(15),
        );
        let inj = FaultInjector::new(plan);
        assert!(!inj.cut_at(1, Nanos::micros(10)), "initiator's island stays reachable");
        assert!(inj.request_cut_at(2, Nanos::micros(10)));
    }

    #[test]
    fn ack_lost_cut_is_one_directional() {
        let plan = FaultPlan::calm(1).with_link_cut(
            4,
            Nanos::micros(10),
            Nanos::micros(20),
            CutDirection::AckLost,
        );
        let inj = FaultInjector::new(plan);
        assert!(!inj.request_cut_at(4, Nanos::micros(15)));
        assert!(inj.ack_cut_at(4, Nanos::micros(15)));
        assert!(!inj.ack_cut_at(4, Nanos::micros(25)));
        assert!(inj.cut_at(4, Nanos::micros(15)));
    }

    #[test]
    fn overlapping_cuts_heal_at_the_latest_edge() {
        let plan = FaultPlan::calm(1)
            .with_link_cut(7, Nanos::micros(10), Nanos::micros(30), CutDirection::Symmetric)
            .with_link_cut(7, Nanos::micros(20), Nanos::micros(50), CutDirection::Symmetric);
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.partition_heals_at(7, Nanos::micros(25)),
            Some(Nanos::micros(50))
        );
    }

    #[test]
    fn invalid_cuts_rejected() {
        let backwards = FaultPlan::calm(0).with_link_cut(
            1,
            Nanos::micros(20),
            Nanos::micros(10),
            CutDirection::Symmetric,
        );
        assert!(backwards.validate().is_err());
        let own_link = FaultPlan::calm(0).with_link_cut(
            INITIATOR,
            Nanos::micros(1),
            Nanos::micros(2),
            CutDirection::Symmetric,
        );
        assert!(own_link.validate().is_err());
    }

    #[test]
    fn for_shard_preserves_the_cut_schedule() {
        let plan = FaultPlan::calm(9).with_partition(
            &[&[1]],
            Nanos::micros(10),
            Nanos::micros(20),
        );
        let sharded = plan.clone().for_shard(3);
        assert_eq!(sharded.cuts, plan.cuts);
        assert_ne!(sharded.seed, plan.seed);
    }

    #[test]
    fn invalid_probabilities_rejected() {
        assert!(FaultPlan::calm(0).with_drop_prob(1.5).validate().is_err());
        assert!(FaultPlan::calm(0)
            .with_drop_prob(0.6)
            .with_corrupt_prob(0.6)
            .validate()
            .is_err());
        assert!(FaultPlan::calm(0).with_drop_prob(-0.1).validate().is_err());
    }

    #[test]
    fn crash_overrides_flap_recovery() {
        let plan = FaultPlan::calm(1)
            .with_flap(0, Nanos::micros(10), Nanos::micros(100))
            .with_crash(0, Nanos::micros(20));
        let mut inj = FaultInjector::new(plan);
        inj.advance_to(Nanos::micros(50));
        // Flap would have recovered at 110, but the crash at 20 is final.
        assert_eq!(inj.node_back_at(0), None);
        inj.advance_to(Nanos::millis(10));
        assert!(inj.node_down_at(0, Nanos::millis(10)));
    }
}
