//! Network and memory-copy latency models.

use kona_types::Nanos;

/// One-sided RDMA verb timing: `base + bytes / bandwidth`, with a reduced
/// per-request cost for linked (batched) requests after the first.
///
/// Calibration: the paper measures 3 µs for a 4 KiB verb on 100 Gbps RoCE.
/// 4 KiB at 12.5 GB/s is ~330 ns of serialization, so the base (NIC
/// processing + fabric propagation + remote NIC) is ~2.67 µs.
///
/// # Examples
///
/// ```
/// # use kona_net::NetworkModel;
/// let m = NetworkModel::connectx5();
/// let t = m.verb_time(4096);
/// assert!((2900..3100).contains(&t.as_ns()), "4 KiB verb should be ~3us, got {t}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Fixed cost of the first verb in a posted chain.
    pub base_latency: Nanos,
    /// Incremental NIC processing cost of each linked verb after the first.
    pub linked_op_overhead: Nanos,
    /// Link bandwidth in bytes per microsecond.
    pub bytes_per_us: u64,
    /// Cost of generating one completion (CQE) for a signaled request.
    pub completion_overhead: Nanos,
}

impl NetworkModel {
    /// The paper's testbed: ConnectX-5 on 100 Gbps RoCE.
    pub fn connectx5() -> Self {
        NetworkModel {
            base_latency: Nanos::from_ns(2_670),
            linked_op_overhead: Nanos::from_ns(150),
            bytes_per_us: 12_500, // 100 Gbps = 12.5 GB/s
            completion_overhead: Nanos::from_ns(100),
        }
    }

    /// Serialization time for `bytes` on the link.
    pub fn wire_time(&self, bytes: u64) -> Nanos {
        Nanos::from_ns(bytes * 1_000 / self.bytes_per_us)
    }

    /// Total time of a single, unlinked verb moving `bytes`.
    pub fn verb_time(&self, bytes: u64) -> Nanos {
        self.base_latency + self.wire_time(bytes)
    }

    /// Total time of a posted chain: the first verb pays
    /// [`NetworkModel::base_latency`], each subsequent verb pays
    /// [`NetworkModel::linked_op_overhead`], and all bytes are serialized.
    pub fn chain_time(&self, sizes: &[u64], signaled_count: usize) -> Nanos {
        if sizes.is_empty() {
            return Nanos::ZERO;
        }
        let total_bytes: u64 = sizes.iter().sum();
        self.base_latency
            + self.linked_op_overhead * (sizes.len() as u64 - 1)
            + self.wire_time(total_bytes)
            + self.completion_overhead * signaled_count as u64
    }

    /// Round-trip time of a minimal message (e.g. an acknowledgment).
    pub fn rtt(&self) -> Nanos {
        self.verb_time(0) * 2
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::connectx5()
    }
}

/// Local memory-copy timing (staging data into RDMA-registered buffers).
///
/// §5.1: "copying data within the same host takes a lot of time but needs
/// to be done because all RDMA reads and writes use buffers registered with
/// the NIC; AVX instructions significantly reduce the overhead of the local
/// copy."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyModel {
    /// Fixed per-copy cost (call overhead, cache effects).
    pub per_copy_overhead: Nanos,
    /// Scalar copy bandwidth, bytes per microsecond.
    pub scalar_bytes_per_us: u64,
    /// AVX copy bandwidth, bytes per microsecond.
    pub avx_bytes_per_us: u64,
}

impl CopyModel {
    /// Skylake-class defaults: ~8 GB/s scalar, ~24 GB/s AVX-512 streaming.
    pub fn skylake() -> Self {
        CopyModel {
            per_copy_overhead: Nanos::from_ns(40),
            scalar_bytes_per_us: 8_000,
            avx_bytes_per_us: 24_000,
        }
    }

    /// Time to copy `bytes` with scalar loads/stores.
    pub fn scalar_copy(&self, bytes: u64) -> Nanos {
        self.per_copy_overhead + Nanos::from_ns(bytes * 1_000 / self.scalar_bytes_per_us)
    }

    /// Time to copy `bytes` with AVX streaming.
    pub fn avx_copy(&self, bytes: u64) -> Nanos {
        self.per_copy_overhead + Nanos::from_ns(bytes * 1_000 / self.avx_bytes_per_us)
    }

    /// Pure streaming bandwidth cost with no per-call overhead — used for
    /// tight loops that amortize setup across many items (e.g. the log
    /// receiver walking a contiguous buffer).
    pub fn streaming_copy(&self, bytes: u64) -> Nanos {
        Nanos::from_ns(bytes * 1_000 / self.avx_bytes_per_us)
    }
}

impl Default for CopyModel {
    fn default() -> Self {
        CopyModel::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_paper() {
        let m = NetworkModel::connectx5();
        // 4 KiB verb ≈ 3 µs (paper §2.1).
        let t = m.verb_time(4096).as_ns();
        assert!((2_900..=3_100).contains(&t), "got {t}");
        // 64 B verb is dominated by base latency.
        assert!(m.verb_time(64).as_ns() < 2_800);
    }

    #[test]
    fn batching_amortizes_base_latency() {
        let m = NetworkModel::connectx5();
        let individual: u64 = (0..8).map(|_| m.verb_time(64).as_ns()).sum();
        let chained = m.chain_time(&[64; 8], 1).as_ns();
        assert!(
            chained < individual / 4,
            "chained {chained} vs individual {individual}"
        );
    }

    #[test]
    fn signaled_completions_cost_extra() {
        let m = NetworkModel::connectx5();
        let unsig = m.chain_time(&[64; 4], 1);
        let all_sig = m.chain_time(&[64; 4], 4);
        assert_eq!(all_sig - unsig, m.completion_overhead * 3);
    }

    #[test]
    fn empty_chain_is_free() {
        assert_eq!(NetworkModel::connectx5().chain_time(&[], 0), Nanos::ZERO);
    }

    #[test]
    fn rtt_is_twice_min_verb() {
        let m = NetworkModel::connectx5();
        assert_eq!(m.rtt(), m.verb_time(0) * 2);
    }

    #[test]
    fn avx_copy_faster_than_scalar() {
        let c = CopyModel::skylake();
        assert!(c.avx_copy(4096) < c.scalar_copy(4096));
        // Tiny copies are dominated by overhead.
        assert_eq!(c.avx_copy(0), c.per_copy_overhead);
    }

    #[test]
    fn wire_time_linear() {
        let m = NetworkModel::connectx5();
        assert_eq!(m.wire_time(12_500), Nanos::micros(1));
        assert_eq!(m.wire_time(0), Nanos::ZERO);
    }
}
