//! The fabric: nodes + verbs + timing, with failure injection.

use crate::latency::NetworkModel;
use crate::node::NodeMemory;
use crate::verbs::{Completion, Opcode, WorkRequest};
use crate::bytes::Bytes;
use kona_telemetry::{Counter, Histogram, Telemetry};
use kona_types::{FxHashMap, KonaError, Nanos, Result};

/// Fabric-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Work requests executed.
    pub requests: u64,
    /// Posted chains (doorbells rung).
    pub posts: u64,
    /// Total bytes moved on the wire.
    pub wire_bytes: u64,
    /// Completions generated.
    pub completions: u64,
}

/// Pre-resolved telemetry handles for the fabric's hot path (no string
/// lookups per verb).
#[derive(Debug, Clone)]
struct NetCounters {
    verbs_read: Counter,
    verbs_write: Counter,
    verbs_send: Counter,
    wire_bytes: Counter,
    posts: Counter,
    completions: Counter,
    signaled_chain_ns: Histogram,
}

impl NetCounters {
    fn new(telemetry: &Telemetry) -> Self {
        NetCounters {
            verbs_read: telemetry.counter("net.verbs.read"),
            verbs_write: telemetry.counter("net.verbs.write"),
            verbs_send: telemetry.counter("net.verbs.send"),
            wire_bytes: telemetry.counter("net.wire_bytes"),
            posts: telemetry.counter("net.posts"),
            completions: telemetry.counter("net.completions"),
            signaled_chain_ns: telemetry.histogram("net.signaled_chain_ns"),
        }
    }

    fn for_opcode(&self, opcode: Opcode) -> &Counter {
        match opcode {
            Opcode::Read => &self.verbs_read,
            Opcode::Write => &self.verbs_write,
            Opcode::Send => &self.verbs_send,
        }
    }
}

/// The RDMA fabric connecting the compute node to the memory nodes.
///
/// `post` executes a *linked chain* of work requests against the registered
/// node pools and returns the chain's simulated duration plus the
/// completions of its signaled requests. See the
/// [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Fabric {
    model: NetworkModel,
    nodes: FxHashMap<u32, NodeMemory>,
    stats: NetStats,
    /// When set, all verbs to this node fail (failure injection, §4.5).
    failed_nodes: Vec<u32>,
    /// Added to every chain's latency (slow-network injection, §4.5).
    injected_delay: Nanos,
    net: NetCounters,
}

impl Fabric {
    /// Creates an empty fabric with the given latency model.
    pub fn new(model: NetworkModel) -> Self {
        Fabric {
            model,
            nodes: FxHashMap::default(),
            stats: NetStats::default(),
            failed_nodes: Vec::new(),
            injected_delay: Nanos::ZERO,
            net: NetCounters::new(&Telemetry::disabled()),
        }
    }

    /// Routes the fabric's metrics (per-verb counters, wire bytes,
    /// signaled-chain latencies) into `telemetry`'s registry.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.net = NetCounters::new(telemetry);
    }

    /// The latency model.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Adds a memory node with `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the node id already exists.
    pub fn add_node(&mut self, id: u32, capacity: u64) {
        let prev = self.nodes.insert(id, NodeMemory::new(id, capacity));
        assert!(prev.is_none(), "node {id} already exists");
    }

    /// Registers `[offset, offset+len)` on node `id` for RDMA.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnknownMemoryNode`] if the node does not exist.
    pub fn register(&mut self, id: u32, offset: u64, len: u64) -> Result<()> {
        self.nodes
            .get_mut(&id)
            .ok_or(KonaError::UnknownMemoryNode(id))?
            .register(offset, len);
        Ok(())
    }

    /// Immutable access to a node's memory.
    pub fn node(&self, id: u32) -> Option<&NodeMemory> {
        self.nodes.get(&id)
    }

    /// Mutable access to a node's memory (the node's own CPU, e.g. the
    /// cache-line log receiver).
    pub fn node_mut(&mut self, id: u32) -> Option<&mut NodeMemory> {
        self.nodes.get_mut(&id)
    }

    /// Marks a node failed; subsequent verbs to it error.
    pub fn fail_node(&mut self, id: u32) {
        if !self.failed_nodes.contains(&id) {
            self.failed_nodes.push(id);
        }
    }

    /// Restores a failed node.
    pub fn recover_node(&mut self, id: u32) {
        self.failed_nodes.retain(|&n| n != id);
    }

    /// Injects `delay` into every subsequent chain (simulates congestion;
    /// set back to zero to clear).
    pub fn inject_delay(&mut self, delay: Nanos) {
        self.injected_delay = delay;
    }

    /// Executes a linked chain of work requests.
    ///
    /// All requests execute (writes land, reads return data) and the chain
    /// is charged as one doorbell: base latency once, per-link overhead for
    /// the rest, serialization for all bytes, plus one completion cost per
    /// signaled request.
    ///
    /// # Errors
    ///
    /// Fails atomically-before-side-effects on: unknown node
    /// ([`KonaError::UnknownMemoryNode`]), failed node
    /// ([`KonaError::MemoryNodeFailed`]) or unregistered memory
    /// ([`KonaError::UnregisteredMemory`]).
    pub fn post(&mut self, chain: Vec<WorkRequest>) -> Result<(Nanos, Vec<Completion>)> {
        // Validate everything first so errors have no side effects.
        for wr in &chain {
            let node_id = wr.remote.node();
            if self.failed_nodes.contains(&node_id) {
                return Err(KonaError::MemoryNodeFailed(node_id));
            }
            let node = self
                .nodes
                .get(&node_id)
                .ok_or(KonaError::UnknownMemoryNode(node_id))?;
            match wr.opcode {
                Opcode::Write => {
                    node.check_registered(wr.remote.offset(), wr.payload.len() as u64)?
                }
                Opcode::Read => node.check_registered(wr.remote.offset(), wr.read_len)?,
                Opcode::Send => {}
            }
        }

        let sizes: Vec<u64> = chain.iter().map(WorkRequest::wire_bytes).collect();
        let signaled = chain.iter().filter(|w| w.is_signaled).count();
        let mut completions = Vec::with_capacity(signaled);

        for wr in chain {
            let node = self
                .nodes
                .get_mut(&wr.remote.node())
                .expect("validated above");
            let data = match wr.opcode {
                Opcode::Write => {
                    node.write_bytes(wr.remote.offset(), &wr.payload)
                        .expect("validated above");
                    Bytes::new()
                }
                Opcode::Read => Bytes::from(
                    node.rdma_read(wr.remote.offset(), wr.read_len)
                        .expect("validated above"),
                ),
                Opcode::Send => Bytes::new(), // control payloads handled by caller
            };
            self.stats.requests += 1;
            self.stats.wire_bytes += wr.wire_bytes();
            self.net.for_opcode(wr.opcode).inc();
            self.net.wire_bytes.add(wr.wire_bytes());
            if wr.is_signaled {
                completions.push(Completion {
                    wr_id: wr.wr_id,
                    data,
                });
            }
        }
        self.stats.posts += 1;
        self.stats.completions += completions.len() as u64;
        self.net.posts.inc();
        self.net.completions.add(completions.len() as u64);
        let time = self.model.chain_time(&sizes, signaled) + self.injected_delay;
        if signaled > 0 {
            self.net.signaled_chain_ns.record(time.as_ns());
        }
        Ok((time, completions))
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Fabric::new(NetworkModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};
    use kona_types::RemoteAddr;

    fn fabric() -> Fabric {
        let mut f = Fabric::new(NetworkModel::connectx5());
        f.add_node(0, 1 << 16);
        f.register(0, 0, 1 << 16).unwrap();
        f
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut f = fabric();
        f.post(vec![WorkRequest::write(1, RemoteAddr::new(0, 100), vec![7; 64])])
            .unwrap();
        let (_, comps) = f
            .post(vec![WorkRequest::read(2, RemoteAddr::new(0, 100), 64).signaled()])
            .unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(&comps[0].data[..], &[7u8; 64][..]);
    }

    #[test]
    fn telemetry_mirrors_net_stats() {
        let mut f = fabric();
        let tel = Telemetry::disabled();
        f.set_telemetry(&tel);
        f.post(vec![
            WorkRequest::write(1, RemoteAddr::new(0, 0), vec![7; 64]),
            WorkRequest::read(2, RemoteAddr::new(0, 0), 64).signaled(),
        ])
        .unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("net.verbs.write"), Some(1));
        assert_eq!(snap.counter("net.verbs.read"), Some(1));
        assert_eq!(snap.counter("net.posts"), Some(1));
        assert_eq!(snap.counter("net.completions"), Some(1));
        assert_eq!(snap.counter("net.wire_bytes"), Some(f.stats().wire_bytes));
        let h = snap.histogram("net.signaled_chain_ns").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max > 0);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut f = fabric();
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(9, 0), vec![0])])
            .unwrap_err();
        assert_eq!(err, KonaError::UnknownMemoryNode(9));
    }

    #[test]
    fn failed_node_rejected_and_recovers() {
        let mut f = fabric();
        f.fail_node(0);
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0])])
            .unwrap_err();
        assert_eq!(err, KonaError::MemoryNodeFailed(0));
        f.recover_node(0);
        assert!(f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0])])
            .is_ok());
    }

    #[test]
    fn validation_happens_before_side_effects() {
        let mut f = fabric();
        f.add_node(1, 64); // nothing registered on node 1
        let chain = vec![
            WorkRequest::write(1, RemoteAddr::new(0, 0), vec![9; 8]),
            WorkRequest::write(2, RemoteAddr::new(1, 0), vec![9; 8]),
        ];
        assert!(f.post(chain).is_err());
        // First write must NOT have landed.
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[0u8; 8]);
    }

    #[test]
    fn chain_cheaper_than_individual_posts() {
        let mut f = fabric();
        let chain: Vec<_> = (0..8)
            .map(|i| WorkRequest::write(i, RemoteAddr::new(0, i * 64), vec![1; 64]))
            .collect();
        let (chained, _) = f.post(chain).unwrap();
        let mut individual = Nanos::ZERO;
        for i in 0..8u64 {
            let (t, _) = f
                .post(vec![WorkRequest::write(i, RemoteAddr::new(0, i * 64), vec![1; 64])])
                .unwrap();
            individual += t;
        }
        assert!(chained < individual / 4);
    }

    #[test]
    fn injected_delay_applies() {
        let mut f = fabric();
        let (base, _) = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
            .unwrap();
        f.inject_delay(Nanos::millis(1));
        let (slow, _) = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
            .unwrap();
        assert_eq!(slow - base, Nanos::millis(1));
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric();
        f.post(vec![
            WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64]),
            WorkRequest::write(2, RemoteAddr::new(0, 64), vec![0; 64]).signaled(),
        ])
        .unwrap();
        let s = f.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.posts, 1);
        assert_eq!(s.wire_bytes, 128);
        assert_eq!(s.completions, 1);
    }

    #[test]
    #[should_panic]
    fn duplicate_node_panics() {
        let mut f = fabric();
        f.add_node(0, 64);
    }

    /// The fabric behaves like plain remote memory: any sequence of
    /// writes followed by reads returns exactly what a byte-array
    /// mirror holds, and total time is positive and additive.
    #[test]
    fn prop_fabric_is_remote_memory() {
        let mut rng = StdRng::seed_from_u64(0xFAB);
        for _ in 0..32 {
            let ops: Vec<(u64, usize, u8)> = (0..rng.gen_range(1usize..50))
                .map(|_| {
                    (
                        rng.gen_range(0u64..1024),
                        rng.gen_range(1usize..128),
                        rng.gen(),
                    )
                })
                .collect();
            let mut f = fabric();
            let mut mirror = vec![0u8; 1 << 16];
            let mut total = Nanos::ZERO;
            for &(off, len, byte) in &ops {
                let off = off * 64; // keep inside the registered region
                let data = vec![byte; len];
                let (t, _) = f
                    .post(vec![WorkRequest::write(0, RemoteAddr::new(0, off), data.clone())])
                    .unwrap();
                total += t;
                mirror[off as usize..off as usize + len].copy_from_slice(&data);
            }
            for &(off, len, _) in &ops {
                let off = off * 64;
                let (t, comps) = f
                    .post(vec![
                        WorkRequest::read(1, RemoteAddr::new(0, off), len as u64).signaled()
                    ])
                    .unwrap();
                total += t;
                assert_eq!(&comps[0].data[..], &mirror[off as usize..off as usize + len]);
            }
            assert!(total >= f.model().base_latency * (ops.len() as u64 * 2));
        }
    }
}
