//! The fabric: nodes + verbs + timing, with failure injection.

use crate::fault::{FaultInjector, FaultStats};
use crate::latency::NetworkModel;
use crate::node::NodeMemory;
use crate::verbs::{Completion, Opcode, WorkRequest};
use crate::bytes::Bytes;
use kona_telemetry::{Counter, Histogram, Telemetry};
use kona_types::{FxHashMap, KonaError, Nanos, Result};

/// Fabric-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Work requests executed.
    pub requests: u64,
    /// Posted chains (doorbells rung).
    pub posts: u64,
    /// Total bytes moved on the wire.
    pub wire_bytes: u64,
    /// Completions generated.
    pub completions: u64,
    /// Posted chains interrupted by an injected fault.
    pub faulted_posts: u64,
}

impl NetStats {
    /// Accumulates another fabric's counters (shard-merge aggregation).
    pub fn merge(&mut self, other: &NetStats) {
        self.requests += other.requests;
        self.posts += other.posts;
        self.wire_bytes += other.wire_bytes;
        self.completions += other.completions;
        self.faulted_posts += other.faulted_posts;
    }
}

/// Pre-resolved telemetry handles for the fabric's hot path (no string
/// lookups per verb).
#[derive(Debug, Clone)]
struct NetCounters {
    verbs_read: Counter,
    verbs_write: Counter,
    verbs_send: Counter,
    wire_bytes: Counter,
    posts: Counter,
    completions: Counter,
    signaled_chain_ns: Histogram,
    verb_ns_read: Histogram,
    verb_ns_write: Histogram,
    verb_ns_send: Histogram,
    faults_dropped: Counter,
    faults_corrupted: Counter,
    faults_timed_out: Counter,
    faults_node_down: Counter,
}

/// Pre-resolved queueing metrics for one fabric link (initiator → memory
/// node): `net.link<id>.{wrs,inflight_ns,depth}`. The time-integral
/// `inflight_ns` counter divided by a window's width gives that window's
/// mean in-flight depth; the `depth` histogram records per-chain WR
/// counts. Windowed sampling turns these into the congestion table
/// `kona_telemetry::QueueStats` folds.
#[derive(Debug, Clone)]
struct LinkStats {
    wrs: Counter,
    inflight_ns: Counter,
    depth: Histogram,
}

impl LinkStats {
    fn new(telemetry: &Telemetry, node_id: u32) -> Self {
        LinkStats {
            wrs: telemetry.counter_interned("net.link", node_id, "wrs"),
            inflight_ns: telemetry.counter_interned("net.link", node_id, "inflight_ns"),
            depth: telemetry.histogram_interned("net.link", node_id, "depth"),
        }
    }
}

impl NetCounters {
    fn new(telemetry: &Telemetry) -> Self {
        NetCounters {
            verbs_read: telemetry.counter("net.verbs.read"),
            verbs_write: telemetry.counter("net.verbs.write"),
            verbs_send: telemetry.counter("net.verbs.send"),
            wire_bytes: telemetry.counter("net.wire_bytes"),
            posts: telemetry.counter("net.posts"),
            completions: telemetry.counter("net.completions"),
            signaled_chain_ns: telemetry.histogram("net.signaled_chain_ns"),
            verb_ns_read: telemetry.histogram("net.verb_ns.read"),
            verb_ns_write: telemetry.histogram("net.verb_ns.write"),
            verb_ns_send: telemetry.histogram("net.verb_ns.send"),
            faults_dropped: telemetry.counter("net.faults.dropped"),
            faults_corrupted: telemetry.counter("net.faults.corrupted"),
            faults_timed_out: telemetry.counter("net.faults.timed_out"),
            faults_node_down: telemetry.counter("net.faults.node_down"),
        }
    }

    fn for_opcode(&self, opcode: Opcode) -> &Counter {
        match opcode {
            Opcode::Read => &self.verbs_read,
            Opcode::Write => &self.verbs_write,
            Opcode::Send => &self.verbs_send,
        }
    }

    fn latency_for_opcode(&self, opcode: Opcode) -> &Histogram {
        match opcode {
            Opcode::Read => &self.verb_ns_read,
            Opcode::Write => &self.verb_ns_write,
            Opcode::Send => &self.verb_ns_send,
        }
    }

    fn for_fault(&self, kind: kona_types::VerbFaultKind) -> &Counter {
        match kind {
            kona_types::VerbFaultKind::Dropped => &self.faults_dropped,
            kona_types::VerbFaultKind::Corrupted => &self.faults_corrupted,
            kona_types::VerbFaultKind::TimedOut => &self.faults_timed_out,
        }
    }
}

/// The RDMA fabric connecting the compute node to the memory nodes.
///
/// `post` executes a *linked chain* of work requests against the registered
/// node pools and returns the chain's simulated duration plus the
/// completions of its signaled requests. See the
/// [crate documentation](crate) for an example.
///
/// The fabric keeps a simulated clock ([`Fabric::now`]) that advances with
/// every posted chain; an optional [`FaultInjector`] fires its scheduled
/// node flaps/crashes and draws per-verb fault decisions against that
/// clock, making whole chaos runs deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Fabric {
    model: NetworkModel,
    nodes: FxHashMap<u32, NodeMemory>,
    stats: NetStats,
    /// When set, all verbs to this node fail (manual failure injection,
    /// §4.5). Distinct from the nodes the fault injector takes down.
    failed_nodes: Vec<u32>,
    /// Added to every chain's latency (slow-network injection, §4.5).
    injected_delay: Nanos,
    /// Simulated time, advanced by chain durations and `advance_time`.
    clock: Nanos,
    injector: Option<FaultInjector>,
    net: NetCounters,
    /// Per-destination-node queue metrics, resolved lazily on first post.
    links: FxHashMap<u32, LinkStats>,
    /// Span sink: posted chains become Net-track verb leaves and injected
    /// faults become instant markers inside whatever trace is open.
    telemetry: Telemetry,
}

impl Fabric {
    /// Creates an empty fabric with the given latency model.
    pub fn new(model: NetworkModel) -> Self {
        Fabric {
            model,
            nodes: FxHashMap::default(),
            stats: NetStats::default(),
            failed_nodes: Vec::new(),
            injected_delay: Nanos::ZERO,
            clock: Nanos::ZERO,
            injector: None,
            net: NetCounters::new(&Telemetry::disabled()),
            links: FxHashMap::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes the fabric's metrics (per-verb counters, wire bytes,
    /// signaled-chain latencies, injected-fault counters) into
    /// `telemetry`'s registry, and its verb/fault span events into
    /// `telemetry`'s causal tracer.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.net = NetCounters::new(telemetry);
        self.links.clear();
        self.telemetry = telemetry.clone();
    }

    /// The latency model.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Current simulated time. Starts at zero and advances by each posted
    /// chain's duration plus any explicit [`Fabric::advance_time`].
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// Advances the simulated clock by `delta` (e.g. the runtime sleeping
    /// through a retry backoff) and fires any fault-plan events whose
    /// scheduled time has passed — a flapping node can recover while the
    /// initiator backs off.
    pub fn advance_time(&mut self, delta: Nanos) {
        self.clock += delta;
        if let Some(inj) = &mut self.injector {
            inj.advance_to(self.clock);
        }
        self.telemetry.observe_time(self.clock);
    }

    /// Installs a fault injector; it is consulted on every subsequent
    /// post. Replaces any previous injector.
    pub fn set_fault_injector(&mut self, mut injector: FaultInjector) {
        injector.advance_to(self.clock);
        self.injector = Some(injector);
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Counters of faults the injector has fired (all zero when no
    /// injector is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.as_ref().map(FaultInjector::stats).unwrap_or_default()
    }

    /// When `node` — currently down or partitioned per the fault plan —
    /// is scheduled to become reachable again. `None` for a healthy,
    /// manually-failed or permanently-crashed node; the recovery engine
    /// uses this to decide whether an outage is worth waiting out
    /// (`PageFaultFallback`). A node that is both flapping and
    /// partitioned is back only when the later of the two clears.
    pub fn node_back_at(&self, node: u32) -> Option<Nanos> {
        let inj = self.injector.as_ref()?;
        let flap_back = inj.node_back_at(node);
        if inj.node_down_at(node, self.clock) && flap_back.is_none() {
            // Crashed for good: no heal time makes it reachable.
            return None;
        }
        let heal = inj.partition_heals_at(node, self.clock);
        match (flap_back, heal) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether `node` is unreachable right now, by manual `fail_node` or
    /// by the fault plan.
    pub fn node_down(&self, node: u32) -> bool {
        self.failed_nodes.contains(&node)
            || self
                .injector
                .as_ref()
                .is_some_and(|inj| inj.node_down_at(node, self.clock))
    }

    /// Whether `node` cannot currently serve the initiator at all: down
    /// ([`Fabric::node_down`]) or on the far side of an active partition
    /// cut. The cluster control plane keys lease renewal on this.
    pub fn unreachable(&self, node: u32) -> bool {
        self.node_down(node)
            || self
                .injector
                .as_ref()
                .is_some_and(|inj| inj.cut_at(node, self.clock))
    }

    /// Adds a memory node with `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the node id already exists.
    pub fn add_node(&mut self, id: u32, capacity: u64) {
        let prev = self.nodes.insert(id, NodeMemory::new(id, capacity));
        assert!(prev.is_none(), "node {id} already exists");
    }

    /// Registers `[offset, offset+len)` on node `id` for RDMA.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnknownMemoryNode`] if the node does not exist.
    pub fn register(&mut self, id: u32, offset: u64, len: u64) -> Result<()> {
        self.nodes
            .get_mut(&id)
            .ok_or(KonaError::UnknownMemoryNode(id))?
            .register(offset, len);
        Ok(())
    }

    /// Deregisters `[offset, offset+len)` on node `id`: verbs touching the
    /// range fail afterwards (regions straddling the edges are split).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnknownMemoryNode`] if the node does not exist.
    pub fn deregister(&mut self, id: u32, offset: u64, len: u64) -> Result<()> {
        self.nodes
            .get_mut(&id)
            .ok_or(KonaError::UnknownMemoryNode(id))?
            .deregister(offset, len);
        Ok(())
    }

    /// Immutable access to a node's memory.
    pub fn node(&self, id: u32) -> Option<&NodeMemory> {
        self.nodes.get(&id)
    }

    /// Mutable access to a node's memory (the node's own CPU, e.g. the
    /// cache-line log receiver).
    pub fn node_mut(&mut self, id: u32) -> Option<&mut NodeMemory> {
        self.nodes.get_mut(&id)
    }

    /// Marks a node failed; subsequent verbs to it error with
    /// [`KonaError::MemoryNodeFailed`] until [`Fabric::recover_node`].
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnknownMemoryNode`] if no node with this id
    /// exists — failing a node that was never added is a harness bug, not
    /// a scenario.
    pub fn fail_node(&mut self, id: u32) -> Result<()> {
        if !self.nodes.contains_key(&id) {
            return Err(KonaError::UnknownMemoryNode(id));
        }
        if !self.failed_nodes.contains(&id) {
            self.failed_nodes.push(id);
        }
        Ok(())
    }

    /// Restores a manually-failed node (no-op if it was not failed).
    pub fn recover_node(&mut self, id: u32) {
        self.failed_nodes.retain(|&n| n != id);
    }

    /// Injects `delay` into every subsequent chain.
    ///
    /// The delay is **persistent**, not one-shot: each chain posted after
    /// this call is charged `delay` on top of its modeled time, until
    /// [`Fabric::clear_injected_delay`] (or `inject_delay(Nanos::ZERO)`)
    /// resets it. For a *bounded* congestion window tied to simulated
    /// time, use a [`crate::LatencySpike`] in a fault plan instead.
    pub fn inject_delay(&mut self, delay: Nanos) {
        self.injected_delay = delay;
    }

    /// Clears any delay set by [`Fabric::inject_delay`].
    pub fn clear_injected_delay(&mut self) {
        self.injected_delay = Nanos::ZERO;
    }

    /// Executes a linked chain of work requests.
    ///
    /// All requests execute (writes land, reads return data) and the chain
    /// is charged as one doorbell: base latency once, per-link overhead for
    /// the rest, serialization for all bytes, plus one completion cost per
    /// signaled request. The simulated clock advances by the chain's
    /// duration.
    ///
    /// # Errors
    ///
    /// *Static* errors fail atomically-before-side-effects: unknown node
    /// ([`KonaError::UnknownMemoryNode`]), failed/down node
    /// ([`KonaError::MemoryNodeFailed`]) or unregistered memory
    /// ([`KonaError::UnregisteredMemory`]).
    ///
    /// *Injected* faults (drop/corrupt/timeout, or a node lost mid-chain)
    /// fire **during** execution: requests before the faulting one have
    /// landed, the rest have not, and the error is
    /// [`KonaError::VerbFault`] carrying the executed-prefix length.
    /// Verbs are idempotent, so re-posting the whole chain is safe.
    pub fn post(&mut self, chain: Vec<WorkRequest>) -> Result<(Nanos, Vec<Completion>)> {
        // Fire scheduled fault-plan events up to the current instant.
        if let Some(inj) = &mut self.injector {
            inj.advance_to(self.clock);
        }

        // Validate everything first so *static* errors have no side effects.
        for wr in &chain {
            let node_id = wr.remote.node();
            if self.failed_nodes.contains(&node_id) {
                return Err(KonaError::MemoryNodeFailed(node_id));
            }
            if let Some(inj) = &mut self.injector {
                if inj.node_down_at(node_id, self.clock) {
                    inj.note_down_rejection();
                    self.net.faults_node_down.inc();
                    // A down node still costs a detection round trip.
                    self.clock += self.model.rtt();
                    self.telemetry.instant(
                        kona_telemetry::Track::Net,
                        kona_telemetry::EventKind::Fault(kona_telemetry::FaultKind::NodeDown),
                    );
                    self.telemetry.observe_time(self.clock);
                    return Err(KonaError::MemoryNodeFailed(node_id));
                }
            }
            let node = self
                .nodes
                .get(&node_id)
                .ok_or(KonaError::UnknownMemoryNode(node_id))?;
            match wr.opcode {
                Opcode::Write => {
                    node.check_registered(wr.remote.offset(), wr.payload.len() as u64)?
                }
                Opcode::Read => node.check_registered(wr.remote.offset(), wr.read_len)?,
                Opcode::Send => {}
            }
        }

        let sizes: Vec<u64> = chain.iter().map(WorkRequest::wire_bytes).collect();
        let signaled = chain.iter().filter(|w| w.is_signaled).count();
        let lead_opcode = chain.first().map(|w| w.opcode);
        // WRs per destination node, for per-link queue depth accounting
        // (BTreeMap so links are visited in node order, deterministically).
        let mut wrs_per_node: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        for wr in &chain {
            *wrs_per_node.entry(wr.remote.node()).or_default() += 1;
        }
        let mut completions = Vec::with_capacity(signaled);

        for (idx, wr) in chain.into_iter().enumerate() {
            let node_id = wr.remote.node();
            // Injected faults fire mid-execution: the prefix has landed,
            // this request and everything after it have not.
            if let Some(inj) = &mut self.injector {
                // Time at which this request hits the wire.
                let wire_at = self.clock + self.model.chain_time(&sizes[..=idx], 0);
                // `ack_lost`: the request crosses to the node (its side
                // effect happens) but the reverse path is cut, so the
                // verb still times out at the initiator.
                let mut ack_lost = false;
                let fault = if inj.node_down_at(node_id, wire_at) {
                    // The node vanished under the chain: the verb hangs
                    // until its transport deadline.
                    Some(kona_types::VerbFaultKind::TimedOut)
                } else if inj.request_cut_at(node_id, wire_at) {
                    // The request dies at an active partition cut.
                    inj.note_partitioned_verb();
                    Some(kona_types::VerbFaultKind::TimedOut)
                } else if inj.ack_cut_at(node_id, wire_at) {
                    inj.note_partitioned_verb();
                    ack_lost = true;
                    Some(kona_types::VerbFaultKind::TimedOut)
                } else {
                    inj.decide(wr.opcode)
                };
                if let Some(kind) = fault {
                    let penalty = match kind {
                        kona_types::VerbFaultKind::TimedOut => inj.timeout_penalty(),
                        // Drops and CRC rejections are detected by the
                        // ack timeout / NAK round trip.
                        _ => self.model.rtt(),
                    };
                    if ack_lost {
                        // The write landed before its ack was lost; the
                        // executed-prefix count tells the caller so, and
                        // idempotent re-posts are safe either way.
                        let node = self
                            .nodes
                            .get_mut(&node_id)
                            .expect("validated above");
                        if wr.opcode == Opcode::Write {
                            node.write_bytes(wr.remote.offset(), &wr.payload)
                                .expect("validated above");
                        }
                    }
                    self.net.for_fault(kind).inc();
                    self.stats.faulted_posts += 1;
                    self.stats.posts += 1;
                    self.net.posts.inc();
                    self.clock += self.model.chain_time(&sizes[..=idx], 0) + penalty;
                    inj.advance_to(self.clock);
                    self.telemetry.instant(
                        kona_telemetry::Track::Net,
                        kona_telemetry::EventKind::Fault(fault_kind_event(kind)),
                    );
                    self.telemetry.observe_time(self.clock);
                    return Err(KonaError::VerbFault {
                        node: node_id,
                        kind,
                        executed: if ack_lost { idx as u32 + 1 } else { idx as u32 },
                    });
                }
            }
            let node = self
                .nodes
                .get_mut(&node_id)
                .expect("validated above");
            let data = match wr.opcode {
                Opcode::Write => {
                    node.write_bytes(wr.remote.offset(), &wr.payload)
                        .expect("validated above");
                    Bytes::new()
                }
                Opcode::Read => Bytes::from(
                    node.rdma_read(wr.remote.offset(), wr.read_len)
                        .expect("validated above"),
                ),
                Opcode::Send => Bytes::new(), // control payloads handled by caller
            };
            self.stats.requests += 1;
            self.stats.wire_bytes += wr.wire_bytes();
            self.net.for_opcode(wr.opcode).inc();
            self.net.wire_bytes.add(wr.wire_bytes());
            if wr.is_signaled {
                completions.push(Completion {
                    wr_id: wr.wr_id,
                    data,
                });
            }
        }
        self.stats.posts += 1;
        self.stats.completions += completions.len() as u64;
        self.net.posts.inc();
        self.net.completions.add(completions.len() as u64);
        let spike = match &mut self.injector {
            Some(inj) => inj.extra_latency(self.clock),
            None => Nanos::ZERO,
        };
        let time = self.model.chain_time(&sizes, signaled) + self.injected_delay + spike;
        self.clock += time;
        // Per-link occupancy: each of the chain's WRs was in flight on its
        // destination link for the chain's duration. The time-integral
        // counter (WR·ns) divided by a sampling window's width yields that
        // window's mean queue depth; the histogram keeps chain depths.
        for (node_id, n) in wrs_per_node {
            let link = self
                .links
                .entry(node_id)
                .or_insert_with(|| LinkStats::new(&self.telemetry, node_id));
            link.wrs.add(n);
            link.inflight_ns.add(time.as_ns().saturating_mul(n));
            link.depth.record(n);
        }
        if signaled > 0 {
            self.net.signaled_chain_ns.record(time.as_ns());
        }
        if let Some(opcode) = lead_opcode {
            // Per-verb chain latency, keyed by the chain's lead opcode.
            self.net.latency_for_opcode(opcode).record(time.as_ns());
            // One Net-track leaf per chain, charged to whichever simulated
            // thread posted it (the causal tracer inherits the charge).
            self.telemetry.span_leaf(
                kona_telemetry::Track::Net,
                kona_telemetry::EventKind::Verb {
                    opcode: verb_opcode_event(opcode),
                    bytes: sizes.iter().sum(),
                },
                time,
            );
        }
        self.telemetry.observe_time(self.clock);
        Ok((time, completions))
    }
}

/// Maps a fabric opcode onto its telemetry mirror.
fn verb_opcode_event(opcode: Opcode) -> kona_telemetry::VerbOpcode {
    match opcode {
        Opcode::Read => kona_telemetry::VerbOpcode::Read,
        Opcode::Write => kona_telemetry::VerbOpcode::Write,
        Opcode::Send => kona_telemetry::VerbOpcode::Send,
    }
}

/// Maps an injected-fault kind onto its telemetry mirror.
fn fault_kind_event(kind: kona_types::VerbFaultKind) -> kona_telemetry::FaultKind {
    match kind {
        kona_types::VerbFaultKind::Dropped => kona_telemetry::FaultKind::Dropped,
        kona_types::VerbFaultKind::Corrupted => kona_telemetry::FaultKind::Corrupted,
        kona_types::VerbFaultKind::TimedOut => kona_telemetry::FaultKind::TimedOut,
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Fabric::new(NetworkModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use kona_types::rng::{Rng, StdRng};
    use kona_types::{RemoteAddr, VerbFaultKind};

    fn fabric() -> Fabric {
        let mut f = Fabric::new(NetworkModel::connectx5());
        f.add_node(0, 1 << 16);
        f.register(0, 0, 1 << 16).unwrap();
        f
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut f = fabric();
        f.post(vec![WorkRequest::write(1, RemoteAddr::new(0, 100), vec![7; 64])])
            .unwrap();
        let (_, comps) = f
            .post(vec![WorkRequest::read(2, RemoteAddr::new(0, 100), 64).signaled()])
            .unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(&comps[0].data[..], &[7u8; 64][..]);
    }

    #[test]
    fn posts_become_net_track_verb_leaves() {
        let mut f = fabric();
        let tel = Telemetry::with_tracing(64);
        f.set_telemetry(&tel);
        let (time, _) = f
            .post(vec![
                WorkRequest::write(1, RemoteAddr::new(0, 0), vec![7; 64]),
                WorkRequest::read(2, RemoteAddr::new(0, 0), 64).signaled(),
            ])
            .unwrap();
        let events = tel.events();
        assert_eq!(events.len(), 1, "one leaf per posted chain");
        let ev = events[0];
        assert_eq!(ev.track, kona_telemetry::Track::Net);
        assert_eq!(ev.duration, time);
        match ev.kind {
            kona_telemetry::EventKind::Verb { opcode, bytes } => {
                assert_eq!(opcode, kona_telemetry::VerbOpcode::Write, "leading opcode");
                assert_eq!(bytes, f.stats().wire_bytes);
            }
            other => panic!("expected verb leaf, got {other:?}"),
        }
    }

    #[test]
    fn injected_faults_emit_net_track_instants() {
        let mut f = fabric();
        let tel = Telemetry::with_tracing(64);
        f.set_telemetry(&tel);
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(1).with_timeout_prob(1.0),
        ));
        f.post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 8])])
            .unwrap_err();
        let events = tel.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_instant());
        assert_eq!(
            events[0].kind,
            kona_telemetry::EventKind::Fault(kona_telemetry::FaultKind::TimedOut)
        );
        assert_eq!(events[0].track, kona_telemetry::Track::Net);

        // A flap rejection marks node_down.
        let mut f = fabric();
        let tel = Telemetry::with_tracing(64);
        f.set_telemetry(&tel);
        f.set_fault_injector(FaultInjector::new(FaultPlan::calm(1).with_flap(
            0,
            Nanos::ZERO,
            Nanos::secs(1),
        )));
        f.post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 8])])
            .unwrap_err();
        let events = tel.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            kona_telemetry::EventKind::Fault(kona_telemetry::FaultKind::NodeDown)
        );
    }

    #[test]
    fn telemetry_mirrors_net_stats() {
        let mut f = fabric();
        let tel = Telemetry::disabled();
        f.set_telemetry(&tel);
        f.post(vec![
            WorkRequest::write(1, RemoteAddr::new(0, 0), vec![7; 64]),
            WorkRequest::read(2, RemoteAddr::new(0, 0), 64).signaled(),
        ])
        .unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("net.verbs.write"), Some(1));
        assert_eq!(snap.counter("net.verbs.read"), Some(1));
        assert_eq!(snap.counter("net.posts"), Some(1));
        assert_eq!(snap.counter("net.completions"), Some(1));
        assert_eq!(snap.counter("net.wire_bytes"), Some(f.stats().wire_bytes));
        let h = snap.histogram("net.signaled_chain_ns").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max > 0);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut f = fabric();
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(9, 0), vec![0])])
            .unwrap_err();
        assert_eq!(err, KonaError::UnknownMemoryNode(9));
    }

    #[test]
    fn failed_node_rejected_and_recovers() {
        let mut f = fabric();
        f.fail_node(0).unwrap();
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0])])
            .unwrap_err();
        assert_eq!(err, KonaError::MemoryNodeFailed(0));
        f.recover_node(0);
        assert!(f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0])])
            .is_ok());
    }

    #[test]
    fn fail_node_on_unknown_id_errors() {
        let mut f = fabric();
        assert_eq!(f.fail_node(42), Err(KonaError::UnknownMemoryNode(42)));
        // The known node is unaffected.
        assert!(f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0])])
            .is_ok());
    }

    #[test]
    fn validation_happens_before_side_effects() {
        let mut f = fabric();
        f.add_node(1, 64); // nothing registered on node 1
        let chain = vec![
            WorkRequest::write(1, RemoteAddr::new(0, 0), vec![9; 8]),
            WorkRequest::write(2, RemoteAddr::new(1, 0), vec![9; 8]),
        ];
        assert!(f.post(chain).is_err());
        // First write must NOT have landed.
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[0u8; 8]);
    }

    #[test]
    fn chain_cheaper_than_individual_posts() {
        let mut f = fabric();
        let chain: Vec<_> = (0..8)
            .map(|i| WorkRequest::write(i, RemoteAddr::new(0, i * 64), vec![1; 64]))
            .collect();
        let (chained, _) = f.post(chain).unwrap();
        let mut individual = Nanos::ZERO;
        for i in 0..8u64 {
            let (t, _) = f
                .post(vec![WorkRequest::write(i, RemoteAddr::new(0, i * 64), vec![1; 64])])
                .unwrap();
            individual += t;
        }
        assert!(chained < individual / 4);
    }

    #[test]
    fn injected_delay_is_persistent_until_cleared() {
        let mut f = fabric();
        let (base, _) = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
            .unwrap();
        f.inject_delay(Nanos::millis(1));
        // Persistent: EVERY subsequent chain pays the delay, not just one.
        for _ in 0..3 {
            let (slow, _) = f
                .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
                .unwrap();
            assert_eq!(slow - base, Nanos::millis(1));
        }
        f.clear_injected_delay();
        let (after, _) = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
            .unwrap();
        assert_eq!(after, base);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric();
        f.post(vec![
            WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64]),
            WorkRequest::write(2, RemoteAddr::new(0, 64), vec![0; 64]).signaled(),
        ])
        .unwrap();
        let s = f.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.posts, 1);
        assert_eq!(s.wire_bytes, 128);
        assert_eq!(s.completions, 1);
        assert_eq!(s.faulted_posts, 0);
    }

    #[test]
    fn clock_advances_with_posts_and_advance_time() {
        let mut f = fabric();
        assert_eq!(f.now(), Nanos::ZERO);
        let (t, _) = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
            .unwrap();
        assert_eq!(f.now(), t);
        f.advance_time(Nanos::micros(5));
        assert_eq!(f.now(), t + Nanos::micros(5));
    }

    #[test]
    fn injector_drop_faults_whole_first_verb() {
        let mut f = fabric();
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(1).with_drop_prob(1.0),
        ));
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![9; 8])])
            .unwrap_err();
        assert_eq!(
            err,
            KonaError::VerbFault {
                node: 0,
                kind: VerbFaultKind::Dropped,
                executed: 0,
            }
        );
        // Nothing landed, but simulated time passed and the post counted.
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[0u8; 8]);
        assert!(f.now() > Nanos::ZERO);
        assert_eq!(f.stats().faulted_posts, 1);
        assert_eq!(f.fault_stats().dropped, 1);
    }

    #[test]
    fn mid_chain_fault_reports_partial_execution() {
        // Only SENDs fault: the two writes land, the trailing send faults,
        // and the error reports exactly how much of the chain executed.
        let mut plan = FaultPlan::calm(3);
        plan.send.drop = 1.0;
        let mut f = fabric();
        f.set_fault_injector(FaultInjector::new(plan));
        let err = f
            .post(vec![
                WorkRequest::write(1, RemoteAddr::new(0, 0), vec![5; 8]),
                WorkRequest::write(2, RemoteAddr::new(0, 64), vec![6; 8]),
                WorkRequest::send(3, RemoteAddr::new(0, 0), vec![1]),
            ])
            .unwrap_err();
        assert_eq!(
            err,
            KonaError::VerbFault {
                node: 0,
                kind: VerbFaultKind::Dropped,
                executed: 2,
            }
        );
        // The executed prefix landed...
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[5u8; 8]);
        assert_eq!(f.node(0).unwrap().read_bytes(64, 8), &[6u8; 8]);
        // ...and re-posting the whole chain is safe (idempotent verbs).
        let mut retry_plan = FaultPlan::calm(3);
        retry_plan.send.drop = 0.0;
        f.set_fault_injector(FaultInjector::new(retry_plan));
        assert!(f
            .post(vec![
                WorkRequest::write(1, RemoteAddr::new(0, 0), vec![5; 8]),
                WorkRequest::write(2, RemoteAddr::new(0, 64), vec![6; 8]),
                WorkRequest::send(3, RemoteAddr::new(0, 0), vec![1]),
            ])
            .is_ok());
    }

    #[test]
    fn node_lost_mid_chain_times_out_with_prefix_landed() {
        // Node 0 flaps just after the first link of the chain hits the
        // wire: the first write lands, the second times out.
        let mut f = fabric();
        let first_link = f.model().chain_time(&[8], 0);
        let plan = FaultPlan::calm(1).with_flap(
            0,
            first_link + Nanos::from_ns(1),
            Nanos::micros(50),
        );
        f.set_fault_injector(FaultInjector::new(plan));
        let err = f
            .post(vec![
                WorkRequest::write(1, RemoteAddr::new(0, 0), vec![5; 8]),
                WorkRequest::write(2, RemoteAddr::new(0, 64), vec![6; 8]),
            ])
            .unwrap_err();
        assert_eq!(
            err,
            KonaError::VerbFault {
                node: 0,
                kind: VerbFaultKind::TimedOut,
                executed: 1,
            }
        );
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[5u8; 8]);
        assert_eq!(f.node(0).unwrap().read_bytes(64, 8), &[0u8; 8]);
        // Whole-post validation now rejects the down node...
        let err = f
            .post(vec![WorkRequest::write(3, RemoteAddr::new(0, 0), vec![7; 8])])
            .unwrap_err();
        assert_eq!(err, KonaError::MemoryNodeFailed(0));
        assert!(f.node_down(0));
        assert!(f.node_back_at(0).is_some());
        // ...until the flap window passes.
        f.advance_time(Nanos::micros(60));
        assert!(!f.node_down(0));
        assert!(f
            .post(vec![WorkRequest::write(3, RemoteAddr::new(0, 0), vec![7; 8])])
            .is_ok());
    }

    #[test]
    fn crashed_node_rejected_before_side_effects() {
        let mut f = fabric();
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(1).with_crash(0, Nanos::ZERO),
        ));
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![9; 8])])
            .unwrap_err();
        assert_eq!(err, KonaError::MemoryNodeFailed(0));
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[0u8; 8]);
        assert_eq!(f.fault_stats().node_down_rejections, 1);
        assert_eq!(f.node_back_at(0), None);
    }

    #[test]
    fn partitioned_verbs_time_out_and_nothing_lands() {
        let mut f = fabric();
        let plan = FaultPlan::calm(1).with_partition(
            &[&[0]],
            Nanos::ZERO,
            Nanos::micros(100),
        );
        f.set_fault_injector(FaultInjector::new(plan));
        let before = f.now();
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![9; 8])])
            .unwrap_err();
        assert_eq!(
            err,
            KonaError::VerbFault {
                node: 0,
                kind: VerbFaultKind::TimedOut,
                executed: 0,
            }
        );
        // Nothing landed; the verb hung for the timeout penalty.
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[0u8; 8]);
        assert!(f.now() >= before + Nanos::micros(30));
        assert_eq!(f.fault_stats().partitioned_verbs, 1);
        // The node is not *down* — it is alive on the far side.
        assert!(!f.node_down(0));
        assert!(f.unreachable(0));
        assert_eq!(f.node_back_at(0), Some(Nanos::micros(100)));
        // The partition heals on schedule and the same verb succeeds.
        let wait = Nanos::micros(100).saturating_sub(f.now());
        f.advance_time(wait);
        assert!(!f.unreachable(0));
        assert!(f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![9; 8])])
            .is_ok());
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[9u8; 8]);
    }

    #[test]
    fn ack_lost_write_lands_but_times_out() {
        let mut f = fabric();
        let plan = FaultPlan::calm(1).with_link_cut(
            0,
            Nanos::ZERO,
            Nanos::micros(100),
            crate::fault::CutDirection::AckLost,
        );
        f.set_fault_injector(FaultInjector::new(plan));
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![7; 8])])
            .unwrap_err();
        // The initiator sees a timeout, but the write crossed the cut
        // before the ack was lost — the executed count says so.
        assert_eq!(
            err,
            KonaError::VerbFault {
                node: 0,
                kind: VerbFaultKind::TimedOut,
                executed: 1,
            }
        );
        assert_eq!(f.node(0).unwrap().read_bytes(0, 8), &[7u8; 8]);
        assert_eq!(f.fault_stats().partitioned_verbs, 1);
    }

    #[test]
    fn spike_latency_charged_inside_window() {
        let mut f = fabric();
        let (base, _) = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
            .unwrap();
        // Window covers the next post's instant.
        let plan = FaultPlan::calm(1).with_spike(Nanos::ZERO, Nanos::secs(1), Nanos::micros(7));
        f.set_fault_injector(FaultInjector::new(plan));
        let (spiked, _) = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64])])
            .unwrap();
        assert_eq!(spiked - base, Nanos::micros(7));
    }

    #[test]
    fn fault_telemetry_counters_exported() {
        let mut f = fabric();
        let tel = Telemetry::disabled();
        f.set_telemetry(&tel);
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(1).with_timeout_prob(1.0),
        ));
        let err = f
            .post(vec![WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 8])])
            .unwrap_err();
        assert!(matches!(
            err,
            KonaError::VerbFault {
                kind: VerbFaultKind::TimedOut,
                ..
            }
        ));
        let snap = tel.snapshot();
        assert_eq!(snap.counter("net.faults.timed_out"), Some(1));
    }

    #[test]
    #[should_panic]
    fn duplicate_node_panics() {
        let mut f = fabric();
        f.add_node(0, 64);
    }

    /// The fabric behaves like plain remote memory: any sequence of
    /// writes followed by reads returns exactly what a byte-array
    /// mirror holds, and total time is positive and additive.
    #[test]
    fn prop_fabric_is_remote_memory() {
        let mut rng = StdRng::seed_from_u64(0xFAB);
        for _ in 0..32 {
            let ops: Vec<(u64, usize, u8)> = (0..rng.gen_range(1usize..50))
                .map(|_| {
                    (
                        rng.gen_range(0u64..1024),
                        rng.gen_range(1usize..128),
                        rng.gen(),
                    )
                })
                .collect();
            let mut f = fabric();
            let mut mirror = vec![0u8; 1 << 16];
            let mut total = Nanos::ZERO;
            for &(off, len, byte) in &ops {
                let off = off * 64; // keep inside the registered region
                let data = vec![byte; len];
                let (t, _) = f
                    .post(vec![WorkRequest::write(0, RemoteAddr::new(0, off), data.clone())])
                    .unwrap();
                total += t;
                mirror[off as usize..off as usize + len].copy_from_slice(&data);
            }
            for &(off, len, _) in &ops {
                let off = off * 64;
                let (t, comps) = f
                    .post(vec![
                        WorkRequest::read(1, RemoteAddr::new(0, off), len as u64).signaled()
                    ])
                    .unwrap();
                total += t;
                assert_eq!(&comps[0].data[..], &mirror[off as usize..off as usize + len]);
            }
            assert!(total >= f.model().base_latency * (ops.len() as u64 * 2));
        }
    }
}
