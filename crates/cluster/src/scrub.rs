//! End-to-end replica integrity scrubbing.
//!
//! The control plane keeps a *truth store* — the bytes the application
//! actually wrote, at cache-line granularity — and walks the slab map
//! with a cursor, a few slabs per scrub step. For each slab it digests
//! the truth and every reachable copy's fabric memory with the same
//! rolling FNV-1a; a copy whose digest diverges (a healed node that
//! missed flushes during a partition, a stale rejoin) is repaired by
//! re-copying the truth bytes over the fabric. With lease fencing on,
//! the scrub is a proof obligation — it must find zero divergent slabs
//! under every bundled fault plan; with fencing off it is the detection
//! and repair backstop.

use kona_types::{FxHashMap, LineBitmap, CACHE_LINE_SIZE, LINES_PER_PAGE_4K, PAGE_SIZE_4K};

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` (prefixed by their position, so line order matters)
/// into a rolling FNV-1a 64 digest.
pub fn digest_fold(mut hash: u64, position: u64, bytes: &[u8]) -> u64 {
    for b in position.to_le_bytes() {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    hash
}

#[derive(Debug, Clone)]
struct TruthPage {
    image: Vec<u8>,
    written: LineBitmap,
}

/// The compute node's ground truth: every byte range the application
/// wrote (in [`DataMode::Tracked`](kona_types::DataMode) runs), kept at
/// line granularity so the scrubber only ever compares bytes whose
/// expected value it actually knows. Lines only partially covered by a
/// write are not marked — a re-granted slab may legitimately hold
/// garbage in never-written bytes, and the scrubber must not flag it.
#[derive(Debug, Clone, Default)]
pub struct TruthStore {
    pages: FxHashMap<u64, TruthPage>,
}

impl TruthStore {
    /// An empty truth store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an application write of `data` at virtual address `addr`.
    pub fn record_write(&mut self, addr: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let pos = addr + done as u64;
            let page = pos / PAGE_SIZE_4K;
            let start = (pos % PAGE_SIZE_4K) as usize;
            let chunk = (PAGE_SIZE_4K as usize - start).min(data.len() - done);
            let tp = self.pages.entry(page).or_insert_with(|| TruthPage {
                image: vec![0; PAGE_SIZE_4K as usize],
                written: LineBitmap::new(LINES_PER_PAGE_4K),
            });
            tp.image[start..start + chunk].copy_from_slice(&data[done..done + chunk]);
            // Mark only lines the write covers end to end.
            let first_full = (start as u64).div_ceil(CACHE_LINE_SIZE);
            let end_full = (start + chunk) as u64 / CACHE_LINE_SIZE;
            for line in first_full..end_full {
                tp.written.set(line as usize);
            }
            done += chunk;
        }
    }

    /// Drops truth for `[base, base + len)` — the application freed it.
    pub fn clear_range(&mut self, base: u64, len: u64) {
        let first = base / PAGE_SIZE_4K;
        let last = (base + len).div_ceil(PAGE_SIZE_4K);
        for page in first..last {
            self.pages.remove(&page);
        }
    }

    /// Fully written lines inside the virtual range `[base, base+len)`
    /// as `(offset within the range, line bytes)`, in address order.
    pub fn lines_in(&self, base: u64, len: u64) -> Vec<(u64, &[u8])> {
        let mut out = Vec::new();
        let first = base / PAGE_SIZE_4K;
        let last = (base + len).div_ceil(PAGE_SIZE_4K);
        for page in first..last {
            let Some(tp) = self.pages.get(&page) else {
                continue;
            };
            for line in 0..LINES_PER_PAGE_4K {
                if !tp.written.get(line) {
                    continue;
                }
                let addr = page * PAGE_SIZE_4K + line as u64 * CACHE_LINE_SIZE;
                if addr < base || addr + CACHE_LINE_SIZE > base + len {
                    continue;
                }
                let start = line * CACHE_LINE_SIZE as usize;
                out.push((addr - base, &tp.image[start..start + CACHE_LINE_SIZE as usize]));
            }
        }
        out
    }

    /// Rolling digest of the truth lines inside `[base, base+len)`.
    pub fn digest_range(&self, base: u64, len: u64) -> u64 {
        self.lines_in(base, len)
            .into_iter()
            .fold(FNV_OFFSET, |h, (off, bytes)| digest_fold(h, off, bytes))
    }
}

/// Lifetime scrub totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Slab/copy pairs digest-checked.
    pub copies_checked: u64,
    /// Copies whose digest diverged from the truth.
    pub divergence_found: u64,
    /// Divergent copies repaired by re-copy.
    pub divergence_repaired: u64,
    /// Copy checks skipped because the hosting node was unreachable.
    pub skipped: u64,
}

/// The scrub cursor: resumes the slab walk where the last step left
/// off, wrapping at the end of the slab map.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScrubCursor {
    next: u64,
}

impl ScrubCursor {
    /// The next `batch` slab indices (into a `slab_count`-long, sorted
    /// slab list), advancing the cursor.
    pub fn take(&mut self, slab_count: usize, batch: usize) -> Vec<usize> {
        if slab_count == 0 || batch == 0 {
            return Vec::new();
        }
        let take = batch.min(slab_count);
        let out = (0..take)
            .map(|k| (self.next as usize + k) % slab_count)
            .collect();
        self.next = (self.next + take as u64) % slab_count as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tracks_only_fully_written_lines() {
        let mut t = TruthStore::new();
        // One full line at 64 and a partial tail at 128..150.
        t.record_write(64, &[0xAA; 86]);
        let lines = t.lines_in(0, PAGE_SIZE_4K);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].0, 64);
        assert_eq!(lines[0].1, &[0xAA; 64][..]);
        // Completing the partial line makes it visible.
        t.record_write(128, &[0xBB; 64]);
        assert_eq!(t.lines_in(0, PAGE_SIZE_4K).len(), 2);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut a = TruthStore::new();
        a.record_write(0, &[1; 64]);
        a.record_write(64, &[2; 64]);
        let mut b = TruthStore::new();
        b.record_write(0, &[2; 64]);
        b.record_write(64, &[1; 64]);
        assert_ne!(a.digest_range(0, 128), b.digest_range(0, 128));
        assert_eq!(a.digest_range(0, 128), a.clone().digest_range(0, 128));
        // Range restriction changes the digest input set.
        assert_ne!(a.digest_range(0, 128), a.digest_range(0, 64));
    }

    #[test]
    fn clear_range_forgets_pages() {
        let mut t = TruthStore::new();
        t.record_write(0, &[7; 64]);
        t.record_write(PAGE_SIZE_4K, &[8; 64]);
        t.clear_range(0, PAGE_SIZE_4K);
        assert!(t.lines_in(0, PAGE_SIZE_4K).is_empty());
        assert_eq!(t.lines_in(PAGE_SIZE_4K, PAGE_SIZE_4K).len(), 1);
    }

    #[test]
    fn cursor_wraps_deterministically() {
        let mut c = ScrubCursor::default();
        assert_eq!(c.take(3, 2), vec![0, 1]);
        assert_eq!(c.take(3, 2), vec![2, 0]);
        assert_eq!(c.take(3, 2), vec![1, 2]);
        assert!(c.take(0, 2).is_empty());
    }
}
