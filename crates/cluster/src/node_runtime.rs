//! The memory-node runtime: backlog ingestion, log compaction and apply.
//!
//! Each memory node runs a small software runtime (the paper's cache-line
//! log receiver, §4.4) that unpacks shipped log batches into the node's
//! page store. This module models that runtime in simulated time: batches
//! journaled by the compute node's eviction handler land in an apply
//! backlog, a background compaction worker dedupes same-line entries and
//! folds hot pages into full-page images, and the apply worker charges
//! per-entry decode plus streaming-copy costs to the node's local clock.

use kona::{CacheLineLog, LogEntry};
use kona_telemetry::{host_scope, EventKind, Gauge, Histogram, Telemetry, Track};
use kona_types::{
    FxHashMap, KonaError, LineBitmap, Nanos, RemoteAddr, CACHE_LINE_SIZE, LINES_PER_PAGE_4K,
    PAGE_SIZE_4K,
};
use std::collections::VecDeque;

/// Tuning for a memory node's apply/compaction worker.
#[derive(Debug, Clone, Copy)]
pub struct NodeRuntimeConfig {
    /// Dirty-line ratio at or above which the compactor folds a page's
    /// surviving entries into one full-page image (the FPGA applies the
    /// same threshold idea to its dirty-compaction accounting).
    pub fold_threshold: f64,
    /// Fixed decode cost per log entry ("a few memory reads and writes").
    pub per_entry_ns: u64,
    /// Streaming-copy bandwidth into the page store, in bytes per
    /// nanosecond.
    pub copy_bytes_per_ns: u64,
}

impl Default for NodeRuntimeConfig {
    fn default() -> Self {
        NodeRuntimeConfig {
            fold_threshold: 0.5,
            per_entry_ns: 15,
            copy_bytes_per_ns: 16,
        }
    }
}

/// Lifetime totals for one memory-node runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeRuntimeStats {
    /// Log batches received into the backlog.
    pub batches_ingested: u64,
    /// Entries received into the backlog.
    pub entries_ingested: u64,
    /// Encoded bytes received into the backlog.
    pub bytes_ingested: u64,
    /// Entries written into the page store (post-compaction).
    pub entries_applied: u64,
    /// Payload bytes written into the page store.
    pub bytes_applied: u64,
    /// Entries dropped by same-line dedupe (a newer write to the exact
    /// same range superseded them before they were applied).
    pub entries_deduped: u64,
    /// Pages whose entries were folded into one full-page image.
    pub pages_folded: u64,
    /// Pages touched by compaction (denominator of the compaction ratio).
    pub compaction_pages: u64,
    /// Dirty lines observed across compacted pages (numerator).
    pub compaction_dirty_lines: u64,
    /// Entries refused because their batch carried a stale grantor
    /// epoch while fencing was enforced (each refusal surfaces a
    /// [`KonaError::FencedEpoch`]).
    pub stale_rejected: u64,
    /// Entries from stale-epoch batches applied anyway because fencing
    /// enforcement was off — the split-brain writes integrity
    /// scrubbing exists to catch.
    pub stale_applied: u64,
    /// Simulated time the apply worker has spent.
    pub apply_time: Nanos,
}

impl NodeRuntimeStats {
    /// Mean fraction of each compacted page that was dirty — the same
    /// shape as `KonaFpga::dirty_compaction_ratio`, measured at the
    /// receiving node. High ratios mean folding to full-page images is
    /// winning; low ratios mean fine-grained entries carry the traffic.
    pub fn compaction_ratio(&self) -> f64 {
        if self.compaction_pages == 0 {
            return 0.0;
        }
        self.compaction_dirty_lines as f64
            / (self.compaction_pages * LINES_PER_PAGE_4K as u64) as f64
    }
}

/// One memory node's software runtime.
///
/// # Examples
///
/// ```
/// # use kona_cluster::MemoryNodeRuntime;
/// # use kona::{CacheLineLog, LogEntry};
/// # use kona_types::{Nanos, RemoteAddr};
/// let mut node = MemoryNodeRuntime::new(0);
/// let mut log = CacheLineLog::new(4096);
/// log.append(LogEntry { remote: RemoteAddr::new(0, 128), data: vec![7; 64] });
/// node.ingest(Nanos::from_ns(100), log.drain_encoded());
/// assert_eq!(node.backlog_batches(), 1);
/// node.apply();
/// assert_eq!(node.backlog_batches(), 0);
/// assert_eq!(node.read_bytes(128, 64), vec![7; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryNodeRuntime {
    id: u32,
    config: NodeRuntimeConfig,
    /// Page images keyed by page index within the node (offset / 4 KiB).
    pages: FxHashMap<u64, Vec<u8>>,
    /// Per-page dirty-line bitmaps accumulated across applied batches.
    dirty: FxHashMap<u64, LineBitmap>,
    /// Received-but-unapplied `(shipped at, grantor epoch, encoded)`
    /// batches, in arrival order.
    backlog: VecDeque<(Nanos, u64, Vec<u8>)>,
    backlog_bytes: u64,
    /// The grantor epoch of this node's current lease. Batches stamped
    /// with an older epoch were shipped before the node was fenced.
    epoch: u64,
    /// Whether stale-epoch batches are rejected (lease fencing) or
    /// applied anyway (the naive heal).
    fencing: bool,
    /// Typed rejections accumulated by the apply worker, drained by the
    /// control plane via [`MemoryNodeRuntime::take_fence_rejections`].
    fence_rejections: Vec<KonaError>,
    /// The node's local apply clock: tracks the latest shipment time seen,
    /// advanced by apply work.
    clock: Nanos,
    stats: NodeRuntimeStats,
    telemetry: Telemetry,
    backlog_gauge: Gauge,
    backlog_batches_gauge: Gauge,
    /// Backlog depths observed at ingest. Gauges only land at window
    /// close, so a backlog that drains within one control-plane tick is
    /// invisible to them; the histograms keep the within-window peaks.
    backlog_depth_hist: Histogram,
    backlog_bytes_hist: Histogram,
    ratio_gauge: Gauge,
}

impl MemoryNodeRuntime {
    /// Creates a node runtime with default tuning and no telemetry.
    pub fn new(id: u32) -> Self {
        Self::with_telemetry(id, NodeRuntimeConfig::default(), Telemetry::disabled())
    }

    /// Creates a node runtime with explicit tuning, publishing
    /// `cluster.node<id>.*` gauges and Cluster-track spans to `telemetry`.
    pub fn with_telemetry(id: u32, config: NodeRuntimeConfig, telemetry: Telemetry) -> Self {
        let backlog_gauge = telemetry.gauge_interned("cluster.node", id, "backlog_bytes");
        let backlog_batches_gauge = telemetry.gauge_interned("cluster.node", id, "backlog_batches");
        let backlog_depth_hist = telemetry.histogram_interned("cluster.node", id, "backlog_depth");
        let backlog_bytes_hist =
            telemetry.histogram_interned("cluster.node", id, "backlog_bytes_depth");
        let ratio_gauge = telemetry.gauge_interned("cluster.node", id, "compaction_ratio");
        MemoryNodeRuntime {
            id,
            config,
            pages: FxHashMap::default(),
            dirty: FxHashMap::default(),
            backlog: VecDeque::new(),
            backlog_bytes: 0,
            epoch: 0,
            fencing: true,
            fence_rejections: Vec::new(),
            clock: Nanos::ZERO,
            stats: NodeRuntimeStats::default(),
            telemetry,
            backlog_gauge,
            backlog_batches_gauge,
            backlog_depth_hist,
            backlog_bytes_hist,
            ratio_gauge,
        }
    }

    /// This node's fabric id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Batches waiting in the apply backlog.
    pub fn backlog_batches(&self) -> usize {
        self.backlog.len()
    }

    /// Encoded bytes waiting in the apply backlog.
    pub fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    /// The node's local clock (latest shipment seen plus apply work).
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// Lifetime totals.
    pub fn stats(&self) -> NodeRuntimeStats {
        self.stats
    }

    /// The page image at `page_index` (offset / 4 KiB), if any entry has
    /// ever been applied to it.
    pub fn page(&self, page_index: u64) -> Option<&[u8]> {
        self.pages.get(&page_index).map(Vec::as_slice)
    }

    /// Reads `len` bytes at `offset` from the applied page store; bytes
    /// never written read as zero.
    pub fn read_bytes(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let pos = offset + done as u64;
            let page = pos / PAGE_SIZE_4K;
            let start = (pos % PAGE_SIZE_4K) as usize;
            let chunk = (PAGE_SIZE_4K as usize - start).min(len - done);
            if let Some(image) = self.pages.get(&page) {
                out[done..done + chunk].copy_from_slice(&image[start..start + chunk]);
            }
            done += chunk;
        }
        out
    }

    /// The grantor epoch of this node's current lease (0 before any
    /// grant — everything is accepted).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Installs a lease at `epoch`. Epochs only move forward; a stale
    /// grant is ignored.
    pub fn grant_lease(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Turns stale-epoch rejection on (lease fencing, the default) or
    /// off (apply everything and count it — the naive heal the
    /// integrity scrubber backstops).
    pub fn set_fencing(&mut self, on: bool) {
        self.fencing = on;
    }

    /// Rejoins after a fence: the page store, dirty accounting and
    /// apply backlog are wiped — the node re-syncs from scratch rather
    /// than trusting pre-partition state — and the lease is re-granted
    /// at the bumped `epoch`. Lifetime stats and the local clock are
    /// kept.
    pub fn rejoin(&mut self, epoch: u64) {
        self.pages.clear();
        self.dirty.clear();
        self.backlog.clear();
        self.backlog_bytes = 0;
        self.backlog_gauge.set(0.0);
        self.backlog_batches_gauge.set(0.0);
        self.epoch = self.epoch.max(epoch);
    }

    /// Typed [`KonaError::FencedEpoch`] rejections recorded by the
    /// apply worker since the last drain.
    pub fn take_fence_rejections(&mut self) -> Vec<KonaError> {
        std::mem::take(&mut self.fence_rejections)
    }

    /// Receives one encoded log batch shipped at `at` into the backlog,
    /// stamped with the node's current lease epoch.
    pub fn ingest(&mut self, at: Nanos, encoded: Vec<u8>) {
        self.note_ingest(at, &encoded);
        self.backlog.push_back((at, self.epoch, encoded));
        self.publish_backlog_depth();
        self.telemetry.observe_time(self.clock);
    }

    /// [`MemoryNodeRuntime::ingest`] for borrowed batches — the shape the
    /// eviction handler's arena-backed shipment journal hands out.
    pub fn ingest_slice(&mut self, at: Nanos, encoded: &[u8]) {
        self.ingest_stamped(at, encoded, self.epoch);
    }

    /// [`MemoryNodeRuntime::ingest_slice`] with an explicit grantor
    /// epoch — the control plane stamps each drained shipment with the
    /// epoch its lease table held when the batch was flushed, so the
    /// apply worker can tell pre-fence traffic from live traffic.
    pub fn ingest_stamped(&mut self, at: Nanos, encoded: &[u8], epoch: u64) {
        self.note_ingest(at, encoded);
        self.backlog.push_back((at, epoch, encoded.to_vec()));
        self.publish_backlog_depth();
        self.telemetry.observe_time(self.clock);
    }

    /// Publishes the post-ingest backlog depth: gauges carry the value
    /// visible at the next window boundary; the histograms record every
    /// ingest-time sample so peaks inside a window survive even when the
    /// apply worker drains the backlog before the boundary.
    fn publish_backlog_depth(&mut self) {
        self.backlog_gauge.set(self.backlog_bytes as f64);
        self.backlog_batches_gauge.set(self.backlog.len() as f64);
        self.backlog_depth_hist.record(self.backlog.len() as u64);
        self.backlog_bytes_hist.record(self.backlog_bytes);
    }

    /// Shared ingest bookkeeping (entry counting walks headers only — no
    /// decode allocation on the receive path).
    fn note_ingest(&mut self, at: Nanos, encoded: &[u8]) {
        self.stats.batches_ingested += 1;
        self.stats.entries_ingested += CacheLineLog::entry_count(encoded) as u64;
        self.stats.bytes_ingested += encoded.len() as u64;
        self.backlog_bytes += encoded.len() as u64;
        self.clock = self.clock.max(at);
    }

    /// Runs the compaction worker then the apply worker over the whole
    /// backlog, returning the simulated time spent.
    pub fn apply(&mut self) -> Nanos {
        if self.backlog.is_empty() {
            return Nanos::ZERO;
        }
        let _wall = host_scope("shipment_apply");
        let entries = self.compact_backlog();
        let span = self.telemetry.span_open(Track::Cluster, EventKind::LogApply);
        let mut elapsed = Nanos::ZERO;
        for entry in entries {
            elapsed += Nanos::from_ns(
                self.config.per_entry_ns
                    + entry.data.len() as u64 / self.config.copy_bytes_per_ns.max(1),
            );
            self.write_entry(&entry);
            self.stats.entries_applied += 1;
            self.stats.bytes_applied += entry.data.len() as u64;
        }
        self.telemetry.span_close(span, elapsed);
        self.stats.apply_time += elapsed;
        self.clock += elapsed;
        self.backlog_gauge.set(self.backlog_bytes as f64);
        self.backlog_batches_gauge.set(self.backlog.len() as f64);
        self.ratio_gauge.set(self.stats.compaction_ratio());
        self.telemetry.observe_time(self.clock);
        elapsed
    }

    /// The compaction worker: decodes the backlog, drops entries whose
    /// exact byte range is rewritten by a later batch (last-writer-wins —
    /// sound because the surviving write covers the dropped one
    /// completely), and folds a page's surviving entries into one
    /// full-page image once its dirty ratio crosses the fold threshold.
    fn compact_backlog(&mut self) -> Vec<LogEntry> {
        let _wall = host_scope("compaction");
        let mut input: Vec<LogEntry> = Vec::new();
        while let Some((_, epoch, encoded)) = self.backlog.pop_front() {
            self.backlog_bytes -= encoded.len() as u64;
            let mine: Vec<LogEntry> = CacheLineLog::decode(&encoded)
                .into_iter()
                .filter(|e| e.remote.node() == self.id)
                .collect();
            if epoch < self.epoch {
                // The batch was shipped under a lease this node no
                // longer holds — it predates a fence.
                if self.fencing {
                    self.stats.stale_rejected += mine.len() as u64;
                    if !mine.is_empty() {
                        self.fence_rejections.push(KonaError::FencedEpoch {
                            node: self.id,
                            stale: epoch,
                            current: self.epoch,
                        });
                    }
                    continue;
                }
                self.stats.stale_applied += mine.len() as u64;
            }
            input.extend(mine);
        }
        let span = self
            .telemetry
            .span_open(Track::Cluster, EventKind::Compaction);
        let scan = Nanos::from_ns(self.config.per_entry_ns * input.len() as u64);

        // Dedupe: keep only the last write to each exact (offset, len)
        // range, at its original position in the order.
        let input_len = input.len();
        let mut seen: FxHashMap<(u64, usize), ()> = FxHashMap::default();
        let mut keep = vec![false; input_len];
        for (i, e) in input.iter().enumerate().rev() {
            let key = (e.remote.offset(), e.data.len());
            if seen.insert(key, ()).is_none() {
                keep[i] = true;
            }
        }
        let deduped: Vec<LogEntry> = input
            .into_iter()
            .zip(keep)
            .filter_map(|(e, k)| k.then_some(e))
            .collect();
        self.stats.entries_deduped += (input_len - deduped.len()) as u64;

        // Per-page dirty accounting over the surviving entries.
        let mut page_dirty: FxHashMap<u64, LineBitmap> = FxHashMap::default();
        let mut page_order: Vec<u64> = Vec::new();
        for e in &deduped {
            let page = e.remote.offset() / PAGE_SIZE_4K;
            let bm = page_dirty.entry(page).or_insert_with(|| {
                page_order.push(page);
                LineBitmap::new(LINES_PER_PAGE_4K)
            });
            let first = (e.remote.offset() % PAGE_SIZE_4K) / CACHE_LINE_SIZE;
            let lines = (e.data.len() as u64).div_ceil(CACHE_LINE_SIZE);
            for l in first..(first + lines).min(LINES_PER_PAGE_4K as u64) {
                bm.set(l as usize);
            }
        }
        for page in &page_order {
            let bm = &page_dirty[page];
            self.stats.compaction_pages += 1;
            self.stats.compaction_dirty_lines += bm.count_set() as u64;
            let merged = self
                .dirty
                .entry(*page)
                .or_insert_with(|| LineBitmap::new(LINES_PER_PAGE_4K));
            merged.union_with(bm);
        }

        // Fold: pages dirtied past the threshold ship as one full-page
        // image built by replaying their surviving entries over the
        // current store image.
        let fold_lines = (self.config.fold_threshold * LINES_PER_PAGE_4K as f64).ceil() as usize;
        let folding: Vec<u64> = page_order
            .iter()
            .copied()
            .filter(|p| page_dirty[p].count_set() >= fold_lines.max(1))
            .collect();
        let mut out: Vec<LogEntry> = Vec::new();
        if folding.is_empty() {
            out = deduped;
        } else {
            let mut images: FxHashMap<u64, Vec<u8>> = folding
                .iter()
                .map(|&p| {
                    let image = self
                        .pages
                        .get(&p)
                        .cloned()
                        .unwrap_or_else(|| vec![0; PAGE_SIZE_4K as usize]);
                    (p, image)
                })
                .collect();
            for e in deduped {
                let page = e.remote.offset() / PAGE_SIZE_4K;
                if let Some(image) = images.get_mut(&page) {
                    let start = (e.remote.offset() % PAGE_SIZE_4K) as usize;
                    let end = (start + e.data.len()).min(PAGE_SIZE_4K as usize);
                    image[start..end].copy_from_slice(&e.data[..end - start]);
                } else {
                    out.push(e);
                }
            }
            for page in folding {
                self.stats.pages_folded += 1;
                out.push(LogEntry {
                    remote: RemoteAddr::new(self.id, page * PAGE_SIZE_4K),
                    data: images.remove(&page).expect("image built above"),
                });
            }
        }
        self.telemetry.span_close(span, scan);
        self.clock += scan;
        self.stats.apply_time += scan;
        out
    }

    /// Writes one entry's payload into the page store, chunked at page
    /// boundaries.
    fn write_entry(&mut self, entry: &LogEntry) {
        let mut done = 0usize;
        while done < entry.data.len() {
            let pos = entry.remote.offset() + done as u64;
            let page = pos / PAGE_SIZE_4K;
            let start = (pos % PAGE_SIZE_4K) as usize;
            let chunk = (PAGE_SIZE_4K as usize - start).min(entry.data.len() - done);
            let image = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0; PAGE_SIZE_4K as usize]);
            image[start..start + chunk].copy_from_slice(&entry.data[done..done + chunk]);
            done += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(entries: &[(u32, u64, u8, usize)]) -> Vec<u8> {
        let mut log = CacheLineLog::new(1 << 20);
        for &(node, offset, byte, len) in entries {
            assert!(log.append(LogEntry {
                remote: RemoteAddr::new(node, offset),
                data: vec![byte; len],
            }));
        }
        log.drain_encoded()
    }

    #[test]
    fn ingest_and_apply_updates_page_store() {
        let mut node = MemoryNodeRuntime::new(0);
        node.ingest(Nanos::from_ns(10), batch(&[(0, 64, 0xAB, 64), (0, 4096, 0xCD, 128)]));
        assert_eq!(node.backlog_batches(), 1);
        let t = node.apply();
        assert!(t > Nanos::ZERO);
        assert_eq!(node.backlog_batches(), 0);
        assert_eq!(node.backlog_bytes(), 0);
        assert_eq!(node.read_bytes(64, 64), vec![0xAB; 64]);
        assert_eq!(node.read_bytes(4096, 128), vec![0xCD; 128]);
        // Untouched bytes read as zero.
        assert_eq!(node.read_bytes(0, 64), vec![0; 64]);
        let s = node.stats();
        assert_eq!(s.entries_applied, 2);
        assert_eq!(s.bytes_applied, 192);
    }

    #[test]
    fn entries_for_other_nodes_are_skipped() {
        let mut node = MemoryNodeRuntime::new(1);
        node.ingest(Nanos::ZERO, batch(&[(0, 0, 0xFF, 64), (1, 0, 0x11, 64)]));
        node.apply();
        assert_eq!(node.stats().entries_applied, 1);
        assert_eq!(node.read_bytes(0, 64), vec![0x11; 64]);
    }

    #[test]
    fn compaction_dedupes_same_range_last_writer_wins() {
        let mut node = MemoryNodeRuntime::new(0);
        node.ingest(Nanos::ZERO, batch(&[(0, 128, 0x01, 64)]));
        node.ingest(Nanos::from_ns(5), batch(&[(0, 128, 0x02, 64)]));
        node.ingest(Nanos::from_ns(9), batch(&[(0, 128, 0x03, 64)]));
        node.apply();
        // Only the newest write to the range is applied.
        assert_eq!(node.stats().entries_applied, 1);
        assert_eq!(node.read_bytes(128, 64), vec![0x03; 64]);
    }

    #[test]
    fn hot_page_folds_into_full_page_image() {
        let cfg = NodeRuntimeConfig {
            fold_threshold: 0.5,
            ..NodeRuntimeConfig::default()
        };
        let mut node = MemoryNodeRuntime::with_telemetry(0, cfg, Telemetry::disabled());
        // Dirty 40 of 64 lines on page 0 — past the 50% threshold.
        let entries: Vec<(u32, u64, u8, usize)> =
            (0..40).map(|i| (0, i * 64, i as u8, 64)).collect();
        node.ingest(Nanos::ZERO, batch(&entries));
        node.apply();
        let s = node.stats();
        assert_eq!(s.pages_folded, 1);
        // One full-page image instead of 40 entries.
        assert_eq!(s.entries_applied, 1);
        assert_eq!(s.bytes_applied, PAGE_SIZE_4K);
        for i in 0..40u64 {
            assert_eq!(node.read_bytes(i * 64, 64), vec![i as u8; 64], "line {i}");
        }
        // Compaction ratio follows the FPGA pattern: dirty / total lines.
        assert!((s.compaction_ratio() - 40.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn cold_page_stays_fine_grained() {
        let mut node = MemoryNodeRuntime::new(0);
        node.ingest(Nanos::ZERO, batch(&[(0, 0, 0xEE, 64), (0, 512, 0xDD, 64)]));
        node.apply();
        let s = node.stats();
        assert_eq!(s.pages_folded, 0);
        assert_eq!(s.entries_applied, 2);
        assert_eq!(s.bytes_applied, 128);
    }

    #[test]
    fn folding_preserves_prior_page_contents() {
        let mut node = MemoryNodeRuntime::new(0);
        // First: one cold write establishes bytes at offset 3968.
        node.ingest(Nanos::ZERO, batch(&[(0, 3968, 0x55, 64)]));
        node.apply();
        // Then a hot burst folds the page; the old bytes must survive in
        // the folded image.
        let entries: Vec<(u32, u64, u8, usize)> =
            (0..40).map(|i| (0, i * 64, 0x77, 64)).collect();
        node.ingest(Nanos::from_ns(50), batch(&entries));
        node.apply();
        assert_eq!(node.read_bytes(3968, 64), vec![0x55; 64]);
        assert_eq!(node.read_bytes(0, 64), vec![0x77; 64]);
    }

    #[test]
    fn stale_epoch_batches_are_fenced() {
        let mut node = MemoryNodeRuntime::new(0);
        node.grant_lease(1);
        // Shipped under epoch 1, then the node is fenced to epoch 2
        // before the batch is applied.
        node.ingest(Nanos::ZERO, batch(&[(0, 0, 0x01, 64)]));
        node.grant_lease(2);
        node.apply();
        assert_eq!(node.stats().stale_rejected, 1);
        assert_eq!(node.stats().entries_applied, 0);
        assert_eq!(node.read_bytes(0, 64), vec![0; 64], "stale write must not land");
        let errs = node.take_fence_rejections();
        assert_eq!(errs.len(), 1);
        match &errs[0] {
            KonaError::FencedEpoch { node: n, stale, current } => {
                assert_eq!((*n, *stale, *current), (0, 1, 2));
            }
            other => panic!("expected FencedEpoch, got {other:?}"),
        }
        assert!(node.take_fence_rejections().is_empty(), "drain empties the ring");
    }

    #[test]
    fn fencing_off_applies_and_counts_stale_batches() {
        let mut node = MemoryNodeRuntime::new(0);
        node.set_fencing(false);
        node.grant_lease(1);
        node.ingest(Nanos::ZERO, batch(&[(0, 0, 0x77, 64)]));
        node.grant_lease(2);
        node.apply();
        assert_eq!(node.stats().stale_applied, 1);
        assert_eq!(node.stats().stale_rejected, 0);
        assert_eq!(node.read_bytes(0, 64), vec![0x77; 64], "naive heal applies stale writes");
        assert!(node.take_fence_rejections().is_empty());
    }

    #[test]
    fn rejoin_wipes_state_and_installs_the_bumped_epoch() {
        let mut node = MemoryNodeRuntime::new(0);
        node.grant_lease(1);
        node.ingest(Nanos::ZERO, batch(&[(0, 0, 0x42, 64)]));
        node.apply();
        assert_eq!(node.read_bytes(0, 64), vec![0x42; 64]);
        node.ingest(Nanos::from_ns(5), batch(&[(0, 64, 0x43, 64)]));
        node.rejoin(3);
        assert_eq!(node.epoch(), 3);
        assert_eq!(node.backlog_batches(), 0, "rejoin drops the backlog");
        assert_eq!(node.backlog_bytes(), 0);
        assert_eq!(node.read_bytes(0, 64), vec![0; 64], "rejoin wipes the page store");
        // Fresh post-rejoin traffic applies normally.
        node.ingest(Nanos::from_ns(10), batch(&[(0, 0, 0x44, 64)]));
        node.apply();
        assert_eq!(node.read_bytes(0, 64), vec![0x44; 64]);
    }

    #[test]
    fn clock_tracks_shipments_and_apply_work() {
        let mut node = MemoryNodeRuntime::new(0);
        node.ingest(Nanos::from_ns(1000), batch(&[(0, 0, 1, 64)]));
        assert_eq!(node.clock(), Nanos::from_ns(1000));
        node.apply();
        assert!(node.clock() > Nanos::from_ns(1000));
        assert_eq!(node.clock(), Nanos::from_ns(1000) + node.stats().apply_time);
    }
}
