//! Lease/epoch membership for the cluster control plane.
//!
//! The controller grants every memory node a time-bound *lease* stamped
//! with a monotonically increasing *epoch*. A node that keeps answering
//! on the fabric renews for free each control tick; a node cut off by a
//! network partition misses renewals, its lease expires, and the
//! controller *fences* it — the epoch is bumped so any log batch
//! stamped with the old epoch is recognisably stale. Fencing is what
//! turns a partition from a split-brain hazard into an availability
//! event: the reachable side keeps the write path (stale-epoch applies
//! are rejected with [`kona_types::KonaError::FencedEpoch`]) while the
//! cut-off node's slabs are re-replicated among the survivors. When the
//! partition heals the stale node rejoins through a full re-sync at the
//! bumped epoch instead of silently applying pre-partition writes.

use kona_types::{FxHashMap, Nanos};

/// One node's lease as the controller sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The grantor epoch: every shipment to the node carries the epoch
    /// current at drain time, and the node rejects batches older than
    /// its granted epoch once fencing bumps it.
    pub epoch: u64,
    /// Simulated time at which the lease lapses unless renewed.
    pub expires: Nanos,
    /// Whether the node is currently fenced (lease expired while the
    /// node was unreachable; epoch bumped; rejoin pending).
    pub fenced: bool,
    /// When the fence was raised — shipments journaled before this
    /// instant carry the pre-fence epoch.
    pub fenced_at: Option<Nanos>,
}

/// Lifetime lease-protocol totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Initial lease grants (one per node, plus one per rejoin).
    pub grants: u64,
    /// Successful renewals.
    pub renewals: u64,
    /// Leases that lapsed because the holder was unreachable.
    pub expirations: u64,
    /// Fenced nodes readmitted after evacuation and heal.
    pub rejoins: u64,
}

/// The controller's lease table: per-node epoch, expiry and fence state.
#[derive(Debug, Clone, Default)]
pub struct LeaseTable {
    leases: FxHashMap<u32, Lease>,
    stats: LeaseStats,
}

impl LeaseTable {
    /// An empty table; nodes are admitted through [`LeaseTable::grant`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The lease for `node`, if granted.
    pub fn get(&self, node: u32) -> Option<Lease> {
        self.leases.get(&node).copied()
    }

    /// The epoch currently granted to `node` (0 before any grant).
    pub fn epoch(&self, node: u32) -> u64 {
        self.leases.get(&node).map_or(0, |l| l.epoch)
    }

    /// Whether `node` is currently fenced.
    pub fn fenced(&self, node: u32) -> bool {
        self.leases.get(&node).is_some_and(|l| l.fenced)
    }

    /// Admits `node` with a fresh epoch-1 lease running until `expires`.
    /// Granting an already-leased node is a no-op (use
    /// [`LeaseTable::renew`] / [`LeaseTable::rejoin`]).
    pub fn grant(&mut self, node: u32, expires: Nanos) {
        if self.leases.contains_key(&node) {
            return;
        }
        self.leases.insert(
            node,
            Lease {
                epoch: 1,
                expires,
                fenced: false,
                fenced_at: None,
            },
        );
        self.stats.grants += 1;
    }

    /// Extends `node`'s lease to `expires`. Fenced nodes cannot renew —
    /// they must [`rejoin`](LeaseTable::rejoin).
    pub fn renew(&mut self, node: u32, expires: Nanos) {
        if let Some(l) = self.leases.get_mut(&node) {
            if !l.fenced {
                l.expires = expires;
                self.stats.renewals += 1;
            }
        }
    }

    /// Whether `node`'s lease has lapsed at `now` (and it is not yet
    /// fenced).
    pub fn expired(&self, node: u32, now: Nanos) -> bool {
        self.leases
            .get(&node)
            .is_some_and(|l| !l.fenced && now >= l.expires)
    }

    /// Fences `node` at `now`: the epoch is bumped so in-flight batches
    /// stamped with the old epoch are recognisably stale, and the node
    /// stays out of the write path until it rejoins.
    pub fn fence(&mut self, node: u32, now: Nanos) {
        if let Some(l) = self.leases.get_mut(&node) {
            if !l.fenced {
                l.fenced = true;
                l.fenced_at = Some(now);
                l.epoch += 1;
                self.stats.expirations += 1;
            }
        }
    }

    /// Readmits a fenced node with a fresh lease at the bumped epoch.
    pub fn rejoin(&mut self, node: u32, expires: Nanos) {
        if let Some(l) = self.leases.get_mut(&node) {
            if l.fenced {
                l.fenced = false;
                l.fenced_at = None;
                l.expires = expires;
                self.stats.rejoins += 1;
            }
        }
    }

    /// The epoch to stamp on a shipment journaled at `at` for `node`:
    /// batches that were flushed before the fence went up carry the
    /// pre-fence epoch (that is the grantor epoch they were shipped
    /// under), so the node's apply worker can tell them from
    /// post-rejoin traffic.
    pub fn stamp_epoch(&self, node: u32, at: Nanos) -> u64 {
        match self.leases.get(&node) {
            Some(l) if l.fenced && l.fenced_at.is_some_and(|f| at < f) => l.epoch - 1,
            Some(l) => l.epoch,
            None => 0,
        }
    }

    /// Lifetime protocol totals.
    pub fn stats(&self) -> LeaseStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_renew_expire_fence_rejoin_lifecycle() {
        let mut t = LeaseTable::new();
        t.grant(0, Nanos::from_ns(100));
        assert_eq!(t.epoch(0), 1);
        assert!(!t.fenced(0));
        // Double grant is a no-op.
        t.grant(0, Nanos::from_ns(999));
        assert_eq!(t.get(0).unwrap().expires, Nanos::from_ns(100));
        assert_eq!(t.stats().grants, 1);

        t.renew(0, Nanos::from_ns(200));
        assert!(!t.expired(0, Nanos::from_ns(150)));
        assert!(t.expired(0, Nanos::from_ns(200)));

        t.fence(0, Nanos::from_ns(210));
        assert!(t.fenced(0));
        assert_eq!(t.epoch(0), 2);
        // Fenced nodes cannot renew and never re-expire.
        t.renew(0, Nanos::from_ns(900));
        assert!(!t.expired(0, Nanos::from_ns(900)));
        // Double fence does not bump twice.
        t.fence(0, Nanos::from_ns(220));
        assert_eq!(t.epoch(0), 2);
        assert_eq!(t.stats().expirations, 1);

        t.rejoin(0, Nanos::from_ns(300));
        assert!(!t.fenced(0));
        assert_eq!(t.epoch(0), 2, "rejoin keeps the bumped epoch");
        assert_eq!(t.stats().rejoins, 1);
    }

    #[test]
    fn stamp_epoch_splits_at_the_fence() {
        let mut t = LeaseTable::new();
        t.grant(3, Nanos::from_ns(100));
        assert_eq!(t.stamp_epoch(3, Nanos::from_ns(50)), 1);
        t.fence(3, Nanos::from_ns(120));
        // Shipments flushed before the fence carry the old epoch…
        assert_eq!(t.stamp_epoch(3, Nanos::from_ns(119)), 1);
        // …and anything at or after it carries the bumped epoch.
        assert_eq!(t.stamp_epoch(3, Nanos::from_ns(120)), 2);
        t.rejoin(3, Nanos::from_ns(500));
        assert_eq!(t.stamp_epoch(3, Nanos::from_ns(50)), 2);
        // Ungranted nodes stamp epoch 0.
        assert_eq!(t.stamp_epoch(9, Nanos::from_ns(50)), 0);
    }
}
