//! Cluster control plane for the Kona disaggregated-memory runtime.
//!
//! This crate adds the rack-scale layer above `kona`'s single
//! compute-node runtime:
//!
//! - [`MemoryNodeRuntime`] — each memory node's software runtime. It
//!   receives the cache-line-log batches the compute node's eviction
//!   handler flushed (via the shipment journal), holds them in an apply
//!   backlog, and runs a compaction worker that dedupes superseded
//!   entries and folds hot pages into full-page images before the apply
//!   worker writes them into the node's page store — all in simulated
//!   time on the node's own clock.
//! - [`ClusterRuntime`] — a [`kona::RemoteMemoryRuntime`] wrapper that
//!   drives those workers on a deterministic operation-count tick and
//!   runs the control plane: capacity-aware placement (configured
//!   through [`kona::PlacementKind`]), slab migration and rebalancing on
//!   occupancy skew, and post-crash re-replication that restores the
//!   K-way replication budget.
//! - [`lease`] / [`scrub`] — partition tolerance: time-bound leases
//!   with epoch fencing (a node cut off by a network partition misses
//!   renewal, is fenced, and its stale-epoch writes are rejected with
//!   [`kona_types::KonaError::FencedEpoch`] while its slabs
//!   re-replicate on the reachable side), plus a cursor-driven
//!   integrity scrub that digests compute-node truth against every
//!   replica and re-copies divergent slabs.
//!
//! Everything is deterministic: control work is keyed to operation
//! counts and simulated clocks, never the wall clock, so runs are
//! byte-identical at any parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
pub mod lease;
mod node_runtime;
pub mod scrub;

pub use control::{ClusterRuntime, ClusterStats, ControlPlaneConfig};
pub use lease::{Lease, LeaseStats, LeaseTable};
pub use node_runtime::{MemoryNodeRuntime, NodeRuntimeConfig, NodeRuntimeStats};
pub use scrub::{ScrubStats, TruthStore};
