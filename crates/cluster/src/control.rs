//! The cluster control plane.
//!
//! [`ClusterRuntime`] wraps a [`KonaRuntime`] and adds the rack-scale
//! duties the paper assigns to the memory controller: it journals the
//! eviction handler's flushed log batches and replays them into per-node
//! [`MemoryNodeRuntime`] apply workers, re-replicates slabs after a node
//! crash to restore the K-way budget, and migrates slabs off overloaded
//! nodes when occupancy skews. Control work runs on a deterministic
//! operation-count tick, so identical inputs produce identical traffic.

use crate::node_runtime::{MemoryNodeRuntime, NodeRuntimeConfig};
use kona::{
    ClusterConfig, KonaRuntime, NodeOccupancy, RemoteMemoryRuntime, RuntimeStats, ShipmentBatch,
};
use kona_telemetry::Telemetry;
use kona_types::{MemAccess, Nanos, Result, VirtAddr};

/// Control-plane tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControlPlaneConfig {
    /// Run a control tick every this many runtime operations (accesses,
    /// reads, writes, syncs).
    pub tick_ops: u64,
    /// Rebalance when the fullest and emptiest live nodes differ by more
    /// than this many slabs.
    pub rebalance_skew_slabs: u64,
    /// Per-node apply/compaction tuning.
    pub node: NodeRuntimeConfig,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            tick_ops: 64,
            rebalance_skew_slabs: 2,
            node: NodeRuntimeConfig::default(),
        }
    }
}

/// Rolled-up view of the cluster's health, combined from the compute
/// runtime's counters and every node runtime's totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterStats {
    /// Encoded bytes waiting in node apply backlogs.
    pub backlog_bytes: u64,
    /// Entries applied into node page stores (post-compaction).
    pub entries_applied: u64,
    /// Payload bytes applied into node page stores.
    pub bytes_applied: u64,
    /// Entries dropped by same-line dedupe across all nodes.
    pub entries_deduped: u64,
    /// Pages folded into full-page images across all nodes.
    pub pages_folded: u64,
    /// Dirty lines across compacted pages (compaction-ratio numerator).
    pub compaction_dirty_lines: u64,
    /// Pages touched by compaction (compaction-ratio denominator).
    pub compaction_pages: u64,
    /// Bytes moved by migration and re-replication.
    pub migration_bytes: u64,
    /// Replacement copies created after node losses.
    pub rereplications: u64,
    /// Slabs still missing part of their replication budget.
    pub under_replicated: u64,
}

impl ClusterStats {
    /// Cluster-wide compaction ratio (the FPGA's dirty-ratio pattern,
    /// aggregated over every node's compacted pages).
    pub fn compaction_ratio(&self) -> f64 {
        if self.compaction_pages == 0 {
            return 0.0;
        }
        self.compaction_dirty_lines as f64
            / (self.compaction_pages * kona_types::LINES_PER_PAGE_4K as u64) as f64
    }
}

/// The Kona runtime plus its cluster control plane.
///
/// Drives exactly like a [`KonaRuntime`] through
/// [`RemoteMemoryRuntime`]; every `tick_ops` operations the control
/// plane drains journaled log shipments into the per-node apply workers,
/// retries crash repair, and rebalances occupancy skew.
///
/// # Examples
///
/// ```
/// # use kona_cluster::ClusterRuntime;
/// # use kona::{ClusterConfig, RemoteMemoryRuntime};
/// let mut rt = ClusterRuntime::new(ClusterConfig::small()).unwrap();
/// let addr = rt.allocate(1 << 20).unwrap();
/// rt.write_bytes(addr, &[42u8; 256]).unwrap();
/// rt.sync().unwrap();
/// assert!(rt.cluster_stats().bytes_applied >= 256);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterRuntime {
    inner: KonaRuntime,
    nodes: Vec<MemoryNodeRuntime>,
    plane: ControlPlaneConfig,
    shipments: ShipmentBatch,
    ops: u64,
    ticks: u64,
}

impl ClusterRuntime {
    /// Creates a cluster runtime with default control-plane tuning and
    /// no telemetry.
    ///
    /// # Errors
    ///
    /// As for [`KonaRuntime::new`].
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::with_telemetry(config, ControlPlaneConfig::default(), Telemetry::disabled())
    }

    /// Creates a cluster runtime publishing metrics and Cluster-track
    /// spans to `telemetry`.
    ///
    /// # Errors
    ///
    /// As for [`KonaRuntime::new`].
    pub fn with_telemetry(
        config: ClusterConfig,
        plane: ControlPlaneConfig,
        telemetry: Telemetry,
    ) -> Result<Self> {
        let nodes = (0..config.memory_nodes)
            .map(|id| MemoryNodeRuntime::with_telemetry(id, plane.node, telemetry.clone()))
            .collect();
        let mut inner = KonaRuntime::with_telemetry(config, telemetry)?;
        inner.enable_shipment_journal();
        inner.set_auto_repair(true);
        Ok(ClusterRuntime {
            inner,
            nodes,
            plane,
            shipments: ShipmentBatch::default(),
            ops: 0,
            ticks: 0,
        })
    }

    /// The wrapped compute-node runtime.
    pub fn inner(&self) -> &KonaRuntime {
        &self.inner
    }

    /// Mutable access to the wrapped runtime (fault injection, manual
    /// migration).
    pub fn inner_mut(&mut self) -> &mut KonaRuntime {
        &mut self.inner
    }

    /// The per-node runtimes, indexed by fabric node id.
    pub fn nodes(&self) -> &[MemoryNodeRuntime] {
        &self.nodes
    }

    /// One node's runtime, if `id` is in range.
    pub fn node(&self, id: u32) -> Option<&MemoryNodeRuntime> {
        self.nodes.get(id as usize)
    }

    /// Control ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Per-node occupancy as accounted by the rack controller.
    pub fn occupancy(&self) -> Vec<NodeOccupancy> {
        self.inner.node_occupancy()
    }

    /// Runs one control tick: drain journaled shipments into the node
    /// apply workers, retry crash repair, and rebalance skew. Repair and
    /// rebalance errors are swallowed — both retry on the next tick and
    /// stay observable through
    /// [`under_replicated`](ClusterStats::under_replicated) and the
    /// occupancy summary.
    pub fn tick(&mut self) {
        self.ticks += 1;
        self.inner.drain_log_shipments_into(&mut self.shipments);
        for (node, at, encoded) in self.shipments.iter() {
            if let Some(nr) = self.nodes.get_mut(node as usize) {
                nr.ingest_slice(at, encoded);
            }
        }
        for nr in &mut self.nodes {
            nr.apply();
        }
        // Repair first (it restores the replication budget), then smooth
        // out any skew the replacement grants introduced.
        let _ = self.inner.repair_lost_nodes();
        let _ = self.inner.rebalance(self.plane.rebalance_skew_slabs);
    }

    /// Rolled-up cluster health.
    pub fn cluster_stats(&self) -> ClusterStats {
        let rt = self.inner.stats();
        let mut out = ClusterStats {
            migration_bytes: rt.migration_bytes,
            rereplications: rt.rereplications,
            under_replicated: self.inner.under_replicated_slabs() as u64,
            ..ClusterStats::default()
        };
        for nr in &self.nodes {
            let s = nr.stats();
            out.backlog_bytes += nr.backlog_bytes();
            out.entries_applied += s.entries_applied;
            out.bytes_applied += s.bytes_applied;
            out.entries_deduped += s.entries_deduped;
            out.pages_folded += s.pages_folded;
            out.compaction_dirty_lines += s.compaction_dirty_lines;
            out.compaction_pages += s.compaction_pages;
        }
        out
    }

    fn after_op(&mut self) {
        self.ops += 1;
        if self.plane.tick_ops > 0 && self.ops.is_multiple_of(self.plane.tick_ops) {
            self.tick();
        }
    }
}

impl RemoteMemoryRuntime for ClusterRuntime {
    fn name(&self) -> &str {
        "Kona-Cluster"
    }

    fn allocate(&mut self, bytes: u64) -> Result<VirtAddr> {
        self.inner.allocate(bytes)
    }

    fn free(&mut self, addr: VirtAddr, bytes: u64) {
        self.inner.free(addr, bytes);
    }

    fn access(&mut self, access: MemAccess) -> Result<Nanos> {
        let t = self.inner.access(access)?;
        self.after_op();
        Ok(t)
    }

    fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<Nanos> {
        let t = self.inner.write_bytes(addr, data)?;
        self.after_op();
        Ok(t)
    }

    fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> Result<Nanos> {
        let t = self.inner.read_bytes(addr, buf)?;
        self.after_op();
        Ok(t)
    }

    fn sync(&mut self) -> Result<Nanos> {
        let t = self.inner.sync()?;
        // Sync is a drain point: always run the control tick so every
        // journaled shipment reaches its node runtime.
        self.tick();
        self.ops += 1;
        Ok(t)
    }

    fn stats(&self) -> RuntimeStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::ByteSize;

    fn config() -> ClusterConfig {
        ClusterConfig::small()
    }

    #[test]
    fn shipments_reach_node_runtimes_on_sync() {
        let mut rt = ClusterRuntime::new(config()).unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        rt.write_bytes(addr, &[0x5A; 4096]).unwrap();
        rt.sync().unwrap();
        let stats = rt.cluster_stats();
        assert!(stats.bytes_applied >= 4096, "stats: {stats:?}");
        assert_eq!(stats.backlog_bytes, 0);
        assert!(rt.ticks() >= 1);
    }

    #[test]
    fn node_store_matches_written_bytes() {
        let mut rt = ClusterRuntime::new(config()).unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        let pattern: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        rt.write_bytes(addr, &pattern).unwrap();
        rt.sync().unwrap();
        // The slab's primary node applied the flushed log; its store
        // mirrors the bytes at the slab's remote offset.
        let total: u64 = rt
            .nodes()
            .iter()
            .map(|n| n.stats().bytes_applied)
            .sum();
        assert!(total >= 256);
    }

    #[test]
    fn tick_cadence_follows_ops() {
        let mut rt = ClusterRuntime::with_telemetry(
            config(),
            ControlPlaneConfig {
                tick_ops: 2,
                ..ControlPlaneConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        for i in 0..6u64 {
            rt.write_bytes(addr + i * 64, &[1; 64]).unwrap();
        }
        assert_eq!(rt.ticks(), 3);
    }

    #[test]
    fn occupancy_visible_through_control_plane() {
        let mut rt = ClusterRuntime::new(config()).unwrap();
        rt.allocate(1 << 20).unwrap();
        let occ = rt.occupancy();
        assert_eq!(occ.len(), 2);
        let used: u64 = occ.iter().map(|o| o.used).sum();
        assert_eq!(used, ByteSize::mib(1).bytes());
    }
}
