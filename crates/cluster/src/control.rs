//! The cluster control plane.
//!
//! [`ClusterRuntime`] wraps a [`KonaRuntime`] and adds the rack-scale
//! duties the paper assigns to the memory controller: it journals the
//! eviction handler's flushed log batches and replays them into per-node
//! [`MemoryNodeRuntime`] apply workers, re-replicates slabs after a node
//! crash to restore the K-way budget, and migrates slabs off overloaded
//! nodes when occupancy skews. Control work runs on a deterministic
//! operation-count tick, so identical inputs produce identical traffic.
//!
//! On top of that sits partition tolerance (see [`crate::lease`] and
//! [`crate::scrub`]): the control plane grants every node a time-bound
//! lease, fences nodes whose lease lapses while they are unreachable
//! (epoch bump, stale-epoch applies rejected, slabs re-replicated on the
//! reachable side), readmits them through a wipe-and-resync rejoin, and
//! runs a cursor-driven integrity scrub that digests compute-node truth
//! against every replica's fabric memory and re-copies divergent slabs.

use crate::lease::LeaseTable;
use crate::node_runtime::{MemoryNodeRuntime, NodeRuntimeConfig};
use crate::scrub::{digest_fold, ScrubCursor, ScrubStats, TruthStore, FNV_OFFSET};
use kona::{
    ClusterConfig, DataMode, KonaRuntime, NodeOccupancy, RemoteMemoryRuntime, RuntimeStats,
    ShipmentBatch,
};
use kona_telemetry::{Counter, Telemetry};
use kona_types::{FxHashMap, MemAccess, Nanos, Result, VirtAddr};

/// Control-plane tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControlPlaneConfig {
    /// Run a control tick every this many runtime operations (accesses,
    /// reads, writes, syncs).
    pub tick_ops: u64,
    /// Rebalance when the fullest and emptiest live nodes differ by more
    /// than this many slabs.
    pub rebalance_skew_slabs: u64,
    /// Lease duration in simulated nanoseconds. A node that stays
    /// unreachable past its expiry is fenced.
    pub lease_ns: u64,
    /// Run an integrity-scrub step every this many control ticks
    /// (0 disables scrubbing).
    pub scrub_interval_ticks: u64,
    /// Slabs digest-checked per scrub step.
    pub scrub_batch: usize,
    /// Enforce lease fencing (the default). Off, the control plane
    /// plays the naive heal: expired leases still bump epochs for
    /// accounting, but stale-epoch batches are applied (and counted)
    /// and healed nodes rejoin without a wipe — the split-brain the
    /// integrity scrubber then detects and repairs.
    pub fencing: bool,
    /// Per-node apply/compaction tuning.
    pub node: NodeRuntimeConfig,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            tick_ops: 64,
            rebalance_skew_slabs: 2,
            lease_ns: 200_000,
            scrub_interval_ticks: 4,
            scrub_batch: 4,
            fencing: true,
            node: NodeRuntimeConfig::default(),
        }
    }
}

/// Rolled-up view of the cluster's health, combined from the compute
/// runtime's counters and every node runtime's totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterStats {
    /// Encoded bytes waiting in node apply backlogs.
    pub backlog_bytes: u64,
    /// Entries applied into node page stores (post-compaction).
    pub entries_applied: u64,
    /// Payload bytes applied into node page stores.
    pub bytes_applied: u64,
    /// Entries dropped by same-line dedupe across all nodes.
    pub entries_deduped: u64,
    /// Pages folded into full-page images across all nodes.
    pub pages_folded: u64,
    /// Dirty lines across compacted pages (compaction-ratio numerator).
    pub compaction_dirty_lines: u64,
    /// Pages touched by compaction (compaction-ratio denominator).
    pub compaction_pages: u64,
    /// Bytes moved by migration and re-replication.
    pub migration_bytes: u64,
    /// Replacement copies created after node losses.
    pub rereplications: u64,
    /// Slabs still missing part of their replication budget.
    pub under_replicated: u64,
    /// Initial lease grants (one per node, plus rejoin re-grants).
    pub lease_grants: u64,
    /// Successful lease renewals.
    pub lease_renewals: u64,
    /// Leases that lapsed while the holder was unreachable (each one
    /// fences the node and bumps its epoch).
    pub lease_expirations: u64,
    /// Fenced nodes readmitted after evacuation and heal.
    pub lease_rejoins: u64,
    /// Log entries refused because their batch carried a stale grantor
    /// epoch (fencing on — the split-brain writes that never landed).
    pub fenced_writes: u64,
    /// Stale-epoch entries applied anyway (fencing off).
    pub stale_applied: u64,
    /// Crash-repair attempts that returned an error (retried next tick;
    /// previously discarded silently).
    pub repair_errors: u64,
    /// Slab/copy pairs digest-checked by the integrity scrub.
    pub scrub_checked: u64,
    /// Copies whose digest diverged from compute-node truth.
    pub scrub_divergence_found: u64,
    /// Divergent copies repaired by re-copying the truth bytes.
    pub scrub_divergence_repaired: u64,
    /// Copy checks skipped because the hosting node was unreachable.
    pub scrub_skipped: u64,
}

impl ClusterStats {
    /// Cluster-wide compaction ratio (the FPGA's dirty-ratio pattern,
    /// aggregated over every node's compacted pages).
    pub fn compaction_ratio(&self) -> f64 {
        if self.compaction_pages == 0 {
            return 0.0;
        }
        self.compaction_dirty_lines as f64
            / (self.compaction_pages * kona_types::LINES_PER_PAGE_4K as u64) as f64
    }
}

/// Telemetry counters the control plane publishes.
#[derive(Debug, Clone)]
struct PlaneCounters {
    lease_grants: Counter,
    lease_renewals: Counter,
    lease_expirations: Counter,
    lease_rejoins: Counter,
    fenced_writes: Counter,
    stale_applied: Counter,
    repair_errors: Counter,
    scrub_checked: Counter,
    scrub_divergent: Counter,
    scrub_repaired: Counter,
    scrub_skipped: Counter,
}

impl PlaneCounters {
    fn new(telemetry: &Telemetry) -> Self {
        PlaneCounters {
            lease_grants: telemetry.counter("cluster.lease_grants"),
            lease_renewals: telemetry.counter("cluster.lease_renewals"),
            lease_expirations: telemetry.counter("cluster.lease_expirations"),
            lease_rejoins: telemetry.counter("cluster.lease_rejoins"),
            fenced_writes: telemetry.counter("cluster.fenced_writes"),
            stale_applied: telemetry.counter("cluster.stale_applied"),
            repair_errors: telemetry.counter("cluster.repair_errors"),
            scrub_checked: telemetry.counter("scrub.checked"),
            scrub_divergent: telemetry.counter("scrub.divergent"),
            scrub_repaired: telemetry.counter("scrub.repaired"),
            scrub_skipped: telemetry.counter("scrub.skipped"),
        }
    }
}

/// The Kona runtime plus its cluster control plane.
///
/// Drives exactly like a [`KonaRuntime`] through
/// [`RemoteMemoryRuntime`]; every `tick_ops` operations the control
/// plane drains journaled log shipments into the per-node apply workers,
/// maintains leases (fencing members that miss renewal while cut off),
/// retries crash repair, scrubs replica integrity, and rebalances
/// occupancy skew.
///
/// # Examples
///
/// ```
/// # use kona_cluster::ClusterRuntime;
/// # use kona::{ClusterConfig, RemoteMemoryRuntime};
/// let mut rt = ClusterRuntime::new(ClusterConfig::small()).unwrap();
/// let addr = rt.allocate(1 << 20).unwrap();
/// rt.write_bytes(addr, &[42u8; 256]).unwrap();
/// rt.sync().unwrap();
/// assert!(rt.cluster_stats().bytes_applied >= 256);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterRuntime {
    inner: KonaRuntime,
    nodes: Vec<MemoryNodeRuntime>,
    plane: ControlPlaneConfig,
    shipments: ShipmentBatch,
    leases: LeaseTable,
    /// Shipments addressed to nodes that were unreachable at drain
    /// time, stamped with the epoch their lease held when flushed;
    /// delivered when the node is reachable again (and rejected there
    /// if the node was fenced in between).
    pending: FxHashMap<u32, Vec<(Nanos, u64, Vec<u8>)>>,
    truth: TruthStore,
    scrub_cursor: ScrubCursor,
    scrub_stats: ScrubStats,
    /// Whether the wrapped runtime tracks data (scrubbing compares
    /// bytes, so it only runs in [`DataMode::Tracked`]).
    tracked: bool,
    counters: PlaneCounters,
    /// Typed [`kona_types::KonaError::FencedEpoch`] rejections, bounded
    /// at 64; drained via [`ClusterRuntime::drain_fence_errors`].
    fence_errors: Vec<kona_types::KonaError>,
    repair_errors: u64,
    /// Watermarks for publishing node-stat deltas as counters.
    fenced_seen: u64,
    stale_seen: u64,
    ops: u64,
    ticks: u64,
}

impl ClusterRuntime {
    /// Creates a cluster runtime with default control-plane tuning and
    /// no telemetry.
    ///
    /// # Errors
    ///
    /// As for [`KonaRuntime::new`].
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::with_telemetry(config, ControlPlaneConfig::default(), Telemetry::disabled())
    }

    /// Creates a cluster runtime publishing metrics and Cluster-track
    /// spans to `telemetry`.
    ///
    /// # Errors
    ///
    /// As for [`KonaRuntime::new`].
    pub fn with_telemetry(
        config: ClusterConfig,
        plane: ControlPlaneConfig,
        telemetry: Telemetry,
    ) -> Result<Self> {
        let tracked = config.data_mode == DataMode::Tracked;
        let counters = PlaneCounters::new(&telemetry);
        let mut nodes: Vec<MemoryNodeRuntime> = (0..config.memory_nodes)
            .map(|id| MemoryNodeRuntime::with_telemetry(id, plane.node, telemetry.clone()))
            .collect();
        let mut leases = LeaseTable::new();
        for nr in &mut nodes {
            // Admission: every node starts with an epoch-1 lease that
            // the first control tick renews.
            leases.grant(nr.id(), Nanos::from_ns(plane.lease_ns));
            nr.grant_lease(1);
            nr.set_fencing(plane.fencing);
            counters.lease_grants.inc();
        }
        let mut inner = KonaRuntime::with_telemetry(config, telemetry)?;
        inner.enable_shipment_journal();
        // With fencing the control plane owns repair timing; the naive
        // (fencing-off) plane must not let the inner runtime repair
        // behind its back either, so it drives repair from the tick in
        // both modes.
        inner.set_auto_repair(plane.fencing);
        Ok(ClusterRuntime {
            inner,
            nodes,
            plane,
            shipments: ShipmentBatch::default(),
            leases,
            pending: FxHashMap::default(),
            truth: TruthStore::new(),
            scrub_cursor: ScrubCursor::default(),
            scrub_stats: ScrubStats::default(),
            tracked,
            counters,
            fence_errors: Vec::new(),
            repair_errors: 0,
            fenced_seen: 0,
            stale_seen: 0,
            ops: 0,
            ticks: 0,
        })
    }

    /// The wrapped compute-node runtime.
    pub fn inner(&self) -> &KonaRuntime {
        &self.inner
    }

    /// Mutable access to the wrapped runtime (fault injection, manual
    /// migration).
    pub fn inner_mut(&mut self) -> &mut KonaRuntime {
        &mut self.inner
    }

    /// The per-node runtimes, indexed by fabric node id.
    pub fn nodes(&self) -> &[MemoryNodeRuntime] {
        &self.nodes
    }

    /// One node's runtime, if `id` is in range.
    pub fn node(&self, id: u32) -> Option<&MemoryNodeRuntime> {
        self.nodes.get(id as usize)
    }

    /// Control ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The lease table (epochs, expiry, fence state).
    pub fn leases(&self) -> &LeaseTable {
        &self.leases
    }

    /// Per-node occupancy as accounted by the rack controller.
    pub fn occupancy(&self) -> Vec<NodeOccupancy> {
        self.inner.node_occupancy()
    }

    /// Runs one control tick, in order: drain journaled shipments
    /// (parking those addressed to unreachable nodes, stamped with
    /// their flush-time epoch), maintain leases (renew reachable
    /// holders, fence lapsed ones, readmit evacuated-and-healed ones),
    /// deliver parked shipments to reachable nodes, run the apply
    /// workers, retry crash repair, scrub replica integrity on its
    /// cadence, and rebalance skew. Repair and rebalance errors are
    /// retried on the next tick; repair errors are additionally counted
    /// in [`repair_errors`](ClusterStats::repair_errors) and the
    /// `cluster.repair_errors` telemetry counter.
    pub fn tick(&mut self) {
        self.ticks += 1;
        let now = self.inner.fabric_mut().now();

        // 1. Drain the shipment journal. Batches for unreachable nodes
        // park in the pending queue; their epoch stamp is fixed at the
        // flush time, so a fence between flush and delivery makes them
        // recognisably stale.
        self.inner.drain_log_shipments_into(&mut self.shipments);
        for (node, at, encoded) in self.shipments.iter() {
            let epoch = self.leases.stamp_epoch(node, at);
            if self.inner.fabric_mut().unreachable(node) {
                self.pending
                    .entry(node)
                    .or_default()
                    .push((at, epoch, encoded.to_vec()));
            } else if let Some(nr) = self.nodes.get_mut(node as usize) {
                nr.ingest_stamped(at, encoded, epoch);
            }
        }

        // 2. Lease maintenance.
        let expires = now + Nanos::from_ns(self.plane.lease_ns);
        for id in 0..self.nodes.len() as u32 {
            let reachable = !self.inner.fabric_mut().unreachable(id);
            if reachable {
                if !self.leases.fenced(id) {
                    self.leases.renew(id, expires);
                    self.counters.lease_renewals.inc();
                }
            } else if self.leases.expired(id, now) {
                // The holder missed renewal while cut off. Fence it:
                // bump the epoch so in-flight batches go stale, and
                // (enforcing) charge the loss budget so its slabs are
                // re-replicated on the reachable side. With the budget
                // already spent, fencing waits for a repair to finish.
                if !self.plane.fencing || self.inner.fence_node(id) {
                    self.leases.fence(id, now);
                    self.counters.lease_expirations.inc();
                }
            }
        }

        // 3. Readmission: a fenced node that is reachable again rejoins
        // once its slabs are fully evacuated (with fencing, via a full
        // wipe-and-resync at the bumped epoch; without, the naive heal
        // keeps its stale memory — the scrubber's job to catch).
        for id in 0..self.nodes.len() as u32 {
            if !self.leases.fenced(id) || self.inner.fabric_mut().unreachable(id) {
                continue;
            }
            let evacuated = self.inner.node_evacuated(id);
            if self.plane.fencing && !evacuated {
                continue;
            }
            let epoch = self.leases.epoch(id);
            self.inner.reinstate_node(id, self.plane.fencing);
            if let Some(nr) = self.nodes.get_mut(id as usize) {
                if self.plane.fencing {
                    nr.rejoin(epoch);
                } else {
                    nr.grant_lease(epoch);
                }
            }
            self.leases.rejoin(id, expires);
            self.counters.lease_rejoins.inc();
            self.counters.lease_grants.inc();
        }

        // 4. Deliver parked shipments to nodes that are reachable and
        // hold a live lease. A node fenced in the interim sees them
        // arrive with the pre-fence epoch and refuses them.
        for id in 0..self.nodes.len() as u32 {
            if self.inner.fabric_mut().unreachable(id) || self.leases.fenced(id) {
                continue;
            }
            let Some(parked) = self.pending.remove(&id) else {
                continue;
            };
            if let Some(nr) = self.nodes.get_mut(id as usize) {
                for (at, epoch, encoded) in parked {
                    nr.ingest_stamped(at, &encoded, epoch);
                }
            }
        }

        // 5. Apply, surfacing typed fence rejections into counters and
        // the bounded error ring.
        for nr in &mut self.nodes {
            nr.apply();
            for e in nr.take_fence_rejections() {
                if self.fence_errors.len() < 64 {
                    self.fence_errors.push(e);
                }
            }
        }
        let fenced: u64 = self.nodes.iter().map(|n| n.stats().stale_rejected).sum();
        let stale: u64 = self.nodes.iter().map(|n| n.stats().stale_applied).sum();
        self.counters
            .fenced_writes
            .add(fenced.saturating_sub(self.fenced_seen));
        self.counters
            .stale_applied
            .add(stale.saturating_sub(self.stale_seen));
        self.fenced_seen = fenced;
        self.stale_seen = stale;

        // 6. Repair (it restores the replication budget) — surfacing
        // errors instead of discarding them — then scrub, then smooth
        // out any skew the replacement grants introduced.
        if self.should_repair() {
            if let Err(_e) = self.inner.repair_lost_nodes() {
                self.repair_errors += 1;
                self.counters.repair_errors.inc();
            }
        }
        if self.tracked
            && self.plane.scrub_interval_ticks > 0
            && self.ticks.is_multiple_of(self.plane.scrub_interval_ticks)
        {
            self.scrub_step();
        }
        let _ = self.inner.rebalance(self.plane.rebalance_skew_slabs);
    }

    /// With fencing, repair runs whenever nodes are lost. The naive
    /// plane instead waits out losses that will heal on their own
    /// (flapped or partitioned nodes) and only repairs permanent
    /// crashes — which is exactly how it ends up serving stale bytes
    /// after the heal.
    fn should_repair(&mut self) -> bool {
        let lost = self.inner.lost_nodes();
        if lost.is_empty() {
            return false;
        }
        if self.plane.fencing {
            return true;
        }
        lost.iter()
            .any(|&n| self.inner.fabric_mut().node_back_at(n).is_none())
    }

    /// One integrity-scrub step: digest the next few slabs' truth
    /// against every reachable copy's fabric memory, re-copying the
    /// truth bytes over any divergent copy.
    fn scrub_step(&mut self) {
        // Flush dirty lines first so truth and fabric agree for healthy
        // copies; under an active partition this can fail transiently,
        // which is fine — unreachable copies are skipped below.
        let _ = self.inner.sync();
        let slabs = self.inner.slab_copies();
        let picks = self.scrub_cursor.take(slabs.len(), self.plane.scrub_batch);
        for i in picks {
            let (base, len, copies) = &slabs[i];
            let lines = self.truth.lines_in(*base, *len);
            if lines.is_empty() {
                continue;
            }
            let want = lines
                .iter()
                .fold(FNV_OFFSET, |h, (off, bytes)| digest_fold(h, *off, bytes));
            for &copy in copies {
                if self.inner.fabric_mut().unreachable(copy.node()) {
                    self.scrub_stats.skipped += 1;
                    self.counters.scrub_skipped.inc();
                    continue;
                }
                let Some(mem) = self.inner.fabric_mut().node(copy.node()) else {
                    continue;
                };
                let got = lines.iter().fold(FNV_OFFSET, |h, (off, bytes)| {
                    digest_fold(h, *off, mem.read_bytes(copy.offset() + off, bytes.len() as u64))
                });
                self.scrub_stats.copies_checked += 1;
                self.counters.scrub_checked.inc();
                if got == want {
                    continue;
                }
                self.scrub_stats.divergence_found += 1;
                self.counters.scrub_divergent.inc();
                // Repair: re-copy the truth bytes, coalescing adjacent
                // lines into runs to keep the verb count down.
                let mut runs: Vec<(u64, Vec<u8>)> = Vec::new();
                for (off, bytes) in &lines {
                    match runs.last_mut() {
                        Some((start, buf)) if *start + buf.len() as u64 == *off => {
                            buf.extend_from_slice(bytes);
                        }
                        _ => runs.push((*off, bytes.to_vec())),
                    }
                }
                let mut repaired = true;
                for (off, buf) in runs {
                    if self
                        .inner
                        .write_remote_retrying(copy.add(off), &buf)
                        .is_err()
                    {
                        repaired = false;
                        break;
                    }
                }
                if repaired {
                    self.scrub_stats.divergence_repaired += 1;
                    self.counters.scrub_repaired.inc();
                }
            }
        }
    }

    /// Runs a full integrity-scrub pass over every slab immediately
    /// (Tracked-mode only; unreachable copies are still skipped) — the
    /// end-of-run audit the partition experiments gate on.
    pub fn scrub_all(&mut self) {
        if !self.tracked {
            return;
        }
        let total = self.inner.slab_copies().len();
        let batch = self.plane.scrub_batch.max(1);
        for _ in 0..total.div_ceil(batch) {
            self.scrub_step();
        }
    }

    /// Lifetime integrity-scrub totals.
    pub fn scrub_stats(&self) -> ScrubStats {
        self.scrub_stats
    }

    /// Drains the typed [`kona_types::KonaError::FencedEpoch`]
    /// rejections the apply workers raised (bounded at 64 between
    /// drains).
    pub fn drain_fence_errors(&mut self) -> Vec<kona_types::KonaError> {
        std::mem::take(&mut self.fence_errors)
    }

    /// Balloon support: allocates `bytes` of fresh remote memory (whole
    /// slabs when `bytes` exceeds half a slab, which is how the serving
    /// front end always calls it) and runs the control-plane upkeep the
    /// allocation's fabric traffic earned.
    pub fn balloon_grow(&mut self, bytes: u64) -> Result<VirtAddr> {
        let addr = self.inner.allocate(bytes)?;
        self.after_op();
        Ok(addr)
    }

    /// Balloon support: evacuates and releases `[addr, addr + bytes)`.
    /// Dirty lines are flushed to their home nodes first (the evacuation
    /// step — its failure propagates to the caller *before* anything is
    /// freed, so a failed shrink leaves the region intact), then the
    /// region's truth records are cleared and its slabs returned to the
    /// controller through the slab-reclamation machinery.
    pub fn balloon_release(&mut self, addr: VirtAddr, bytes: u64) -> Result<()> {
        self.inner.sync()?;
        self.truth.clear_range(addr.raw(), bytes);
        self.inner.free(addr, bytes);
        self.tick();
        Ok(())
    }

    /// QoS passthrough: FMem eviction priority for the pages backing
    /// `[base, base + bytes)` (see [`KonaRuntime::set_eviction_priority`]).
    pub fn set_eviction_priority(&mut self, base: VirtAddr, bytes: u64, priority: i8) {
        self.inner.set_eviction_priority(base, bytes, priority);
    }

    /// Rolled-up cluster health.
    pub fn cluster_stats(&self) -> ClusterStats {
        let rt = self.inner.stats();
        let ls = self.leases.stats();
        let mut out = ClusterStats {
            migration_bytes: rt.migration_bytes,
            rereplications: rt.rereplications,
            under_replicated: self.inner.under_replicated_slabs() as u64,
            lease_grants: ls.grants + ls.rejoins,
            lease_renewals: ls.renewals,
            lease_expirations: ls.expirations,
            lease_rejoins: ls.rejoins,
            repair_errors: self.repair_errors,
            scrub_checked: self.scrub_stats.copies_checked,
            scrub_divergence_found: self.scrub_stats.divergence_found,
            scrub_divergence_repaired: self.scrub_stats.divergence_repaired,
            scrub_skipped: self.scrub_stats.skipped,
            ..ClusterStats::default()
        };
        for nr in &self.nodes {
            let s = nr.stats();
            out.backlog_bytes += nr.backlog_bytes();
            out.entries_applied += s.entries_applied;
            out.bytes_applied += s.bytes_applied;
            out.entries_deduped += s.entries_deduped;
            out.pages_folded += s.pages_folded;
            out.compaction_dirty_lines += s.compaction_dirty_lines;
            out.compaction_pages += s.compaction_pages;
            out.fenced_writes += s.stale_rejected;
            out.stale_applied += s.stale_applied;
        }
        out
    }

    fn after_op(&mut self) {
        self.ops += 1;
        if self.plane.tick_ops > 0 && self.ops.is_multiple_of(self.plane.tick_ops) {
            self.tick();
        }
    }
}

impl RemoteMemoryRuntime for ClusterRuntime {
    fn name(&self) -> &str {
        "Kona-Cluster"
    }

    fn allocate(&mut self, bytes: u64) -> Result<VirtAddr> {
        self.inner.allocate(bytes)
    }

    fn free(&mut self, addr: VirtAddr, bytes: u64) {
        self.truth.clear_range(addr.raw(), bytes);
        self.inner.free(addr, bytes);
    }

    fn access(&mut self, access: MemAccess) -> Result<Nanos> {
        let t = self.inner.access(access)?;
        self.after_op();
        Ok(t)
    }

    fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<Nanos> {
        let t = self.inner.write_bytes(addr, data)?;
        if self.tracked {
            self.truth.record_write(addr.raw(), data);
        }
        self.after_op();
        Ok(t)
    }

    fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> Result<Nanos> {
        let t = self.inner.read_bytes(addr, buf)?;
        self.after_op();
        Ok(t)
    }

    fn sync(&mut self) -> Result<Nanos> {
        let t = self.inner.sync()?;
        // Sync is a drain point: always run the control tick so every
        // journaled shipment reaches its node runtime.
        self.tick();
        self.ops += 1;
        Ok(t)
    }

    fn stats(&self) -> RuntimeStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::ByteSize;

    fn config() -> ClusterConfig {
        ClusterConfig::small()
    }

    #[test]
    fn shipments_reach_node_runtimes_on_sync() {
        let mut rt = ClusterRuntime::new(config()).unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        rt.write_bytes(addr, &[0x5A; 4096]).unwrap();
        rt.sync().unwrap();
        let stats = rt.cluster_stats();
        assert!(stats.bytes_applied >= 4096, "stats: {stats:?}");
        assert_eq!(stats.backlog_bytes, 0);
        assert!(rt.ticks() >= 1);
    }

    #[test]
    fn node_store_matches_written_bytes() {
        let mut rt = ClusterRuntime::new(config()).unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        let pattern: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        rt.write_bytes(addr, &pattern).unwrap();
        rt.sync().unwrap();
        // The slab's primary node applied the flushed log; its store
        // mirrors the bytes at the slab's remote offset.
        let total: u64 = rt
            .nodes()
            .iter()
            .map(|n| n.stats().bytes_applied)
            .sum();
        assert!(total >= 256);
    }

    #[test]
    fn tick_cadence_follows_ops() {
        let mut rt = ClusterRuntime::with_telemetry(
            config(),
            ControlPlaneConfig {
                tick_ops: 2,
                ..ControlPlaneConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        for i in 0..6u64 {
            rt.write_bytes(addr + i * 64, &[1; 64]).unwrap();
        }
        assert_eq!(rt.ticks(), 3);
    }

    #[test]
    fn occupancy_visible_through_control_plane() {
        let mut rt = ClusterRuntime::new(config()).unwrap();
        rt.allocate(1 << 20).unwrap();
        let occ = rt.occupancy();
        assert_eq!(occ.len(), 2);
        let used: u64 = occ.iter().map(|o| o.used).sum();
        assert_eq!(used, ByteSize::mib(1).bytes());
    }

    #[test]
    fn leases_granted_and_renewed_on_healthy_cluster() {
        let mut rt = ClusterRuntime::new(config()).unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        rt.write_bytes(addr, &[9; 1024]).unwrap();
        rt.sync().unwrap();
        let stats = rt.cluster_stats();
        assert_eq!(stats.lease_grants, 2, "one initial grant per node");
        assert!(stats.lease_renewals >= 2);
        assert_eq!(stats.lease_expirations, 0);
        assert_eq!(stats.fenced_writes, 0);
        assert_eq!(stats.stale_applied, 0);
        assert!(!rt.leases().fenced(0));
        assert_eq!(rt.leases().epoch(0), 1);
    }

    #[test]
    fn scrub_runs_clean_on_healthy_cluster() {
        let mut rt = ClusterRuntime::with_telemetry(
            config(),
            ControlPlaneConfig {
                tick_ops: 4,
                scrub_interval_ticks: 1,
                ..ControlPlaneConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        for i in 0..32u64 {
            rt.write_bytes(addr + i * 64, &[i as u8; 64]).unwrap();
        }
        rt.sync().unwrap();
        let stats = rt.cluster_stats();
        assert!(stats.scrub_checked > 0, "stats: {stats:?}");
        assert_eq!(stats.scrub_divergence_found, 0);
        assert_eq!(stats.scrub_skipped, 0);
    }

    #[test]
    fn scrub_detects_and_repairs_injected_divergence() {
        let mut rt = ClusterRuntime::with_telemetry(
            config(),
            ControlPlaneConfig {
                tick_ops: 4,
                scrub_interval_ticks: 1,
                ..ControlPlaneConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let addr = rt.allocate(1 << 20).unwrap();
        rt.write_bytes(addr, &[0xAB; 256]).unwrap();
        rt.sync().unwrap();
        // Corrupt the primary copy behind the runtime's back.
        let copies = rt.inner().slab_copies();
        let (_, _, slab_copies) = &copies[0];
        let target = slab_copies[0];
        rt.inner_mut()
            .fabric_mut()
            .node_mut(target.node())
            .unwrap()
            .local_write(target.offset(), &[0xFF; 64]);
        let before = rt.cluster_stats();
        rt.sync().unwrap();
        let after = rt.cluster_stats();
        assert!(
            after.scrub_divergence_found > before.scrub_divergence_found,
            "divergence detected: {after:?}"
        );
        assert_eq!(after.scrub_divergence_found, after.scrub_divergence_repaired);
        // Another pass finds nothing: the repair converged.
        rt.sync().unwrap();
        let healed = rt.cluster_stats();
        assert_eq!(healed.scrub_divergence_found, after.scrub_divergence_found);
    }
}
