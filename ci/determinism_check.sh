#!/usr/bin/env bash
# Generic determinism check: runs one kona-bench binary twice with
# different parallelism arguments and requires byte-identical output.
#
#   ci/determinism_check.sh BIN LABEL "ARGS_A" "ARGS_B" [fileA=fileB ...]
#
# The two transcripts land in LABEL-a.txt / LABEL-b.txt. Lines echoing
# artifact destinations (they contain "written to") are filtered before
# the transcript compare, since the two runs write to different paths;
# every fileA=fileB pair listed after the args is then compared
# byte-for-byte with cmp.
set -euo pipefail

if [ "$#" -lt 4 ]; then
  echo "usage: $0 BIN LABEL \"ARGS_A\" \"ARGS_B\" [fileA=fileB ...]" >&2
  exit 2
fi

bin=$1
label=$2
args_a=$3
args_b=$4
shift 4

# shellcheck disable=SC2086
cargo run --release -p kona-bench --bin "$bin" -- $args_a | tee "$label-a.txt"
# shellcheck disable=SC2086
cargo run --release -p kona-bench --bin "$bin" -- $args_b | tee "$label-b.txt"

cmp <(grep -v 'written to' "$label-a.txt") <(grep -v 'written to' "$label-b.txt")
for pair in "$@"; do
  cmp "${pair%%=*}" "${pair#*=}"
done
echo "determinism check passed: $bin [$args_a] == [$args_b]"
